"""Data caches: bounded replicas plus the query-side refresh glue (§3).

A :class:`DataCache` holds, for each subscribed table, a cached
:class:`~repro.storage.table.Table` whose bounded columns store intervals
evaluated from the current bound functions.  It implements the executor's
``RefreshProvider`` protocol, so a
:class:`~repro.core.executor.QueryExecutor` wired to a cache transparently
performs query-initiated refreshes through the replication protocol.

Time handling: bound functions widen continuously, so the cache
re-evaluates every tracked bound at the current clock reading before a
query runs (:meth:`DataCache.sync_bounds`).

All cache mutations go through ``Table.update_value`` / ``Row.set`` and
therefore write through to each table's columnar mirror
(:class:`~repro.storage.columnar.ColumnStore`), keeping the executor's
vectorized fast paths and O(1) exactness counters in sync with the
replication protocol.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.bounds.functions import BoundFunction
from repro.errors import (
    ReplicationProtocolError,
    SourceUnavailableError,
    TrappError,
)
from repro.replication.messages import (
    CardinalityChange,
    MasterMigration,
    ObjectKey,
    Refresh,
    RefreshReason,
    RefreshRequest,
)
from repro.replication.source import DataSource
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema
from repro.storage.table import Table

__all__ = [
    "DataCache",
    "SourceRefreshReceipt",
    "BatchedRefreshReceipt",
    "RefreshFailure",
    "BatchCostFunc",
]

#: ``(source_id, n_tuples) -> cost`` — how much one batched round trip to a
#: source costs.  The default charges 1 per tuple (the paper's uniform
#: model); schedulers plug in §8.2 amortized models (setup + marginal·k).
BatchCostFunc = Callable[[str, int], float]


@dataclass(slots=True)
class _Subscription:
    """Where one cached object comes from and its current bound function."""

    source: DataSource
    bound_function: BoundFunction


@dataclass(frozen=True, slots=True)
class SourceRefreshReceipt:
    """What one source was asked for in a batched refresh, and its price.

    ``latency`` is the injected per-contact delay in effect (0 outside a
    latency-spike window) — recorded rather than slept, so chaos runs
    replay deterministically while benches still see the spike.
    """

    source_id: str
    tids: frozenset[int]
    keys: tuple[ObjectKey, ...]
    cost: float
    latency: float = 0.0


@dataclass(frozen=True, slots=True)
class RefreshFailure:
    """One source that could not serve its part of a batched refresh.

    ``error`` names the exception class (``SourceUnavailableError``, …);
    the tuples stay unrefreshed and keep their current — wider but still
    correct — bounds.
    """

    source_id: str
    tids: frozenset[int]
    error: str


@dataclass(frozen=True, slots=True)
class BatchedRefreshReceipt:
    """Per-source accounting for one externally-batched refresh.

    Returned by :meth:`DataCache.refresh_batched` so schedulers that merge
    many queries' plans can see the cost *actually paid* per source —
    which, under an amortized model, is less than the sum each query would
    have paid alone.  Sources that could not be contacted appear in
    ``failures`` instead of raising: a partial batch is a partial
    success, and the scheduler decides whether to retry, fail over, or
    let the affected queries degrade.
    """

    per_source: tuple[SourceRefreshReceipt, ...]
    failures: tuple[RefreshFailure, ...] = ()

    @property
    def total_cost(self) -> float:
        return sum(receipt.cost for receipt in self.per_source)

    @property
    def tids(self) -> frozenset[int]:
        out: set[int] = set()
        for receipt in self.per_source:
            out |= receipt.tids
        return frozenset(out)

    @property
    def failed_tids(self) -> frozenset[int]:
        out: set[int] = set()
        for failure in self.failures:
            out |= failure.tids
        return frozenset(out)

    @property
    def failed_sources(self) -> tuple[str, ...]:
        return tuple(failure.source_id for failure in self.failures)

    @property
    def requests_sent(self) -> int:
        return len(self.per_source) + len(self.failures)


class DataCache:
    """A cache of bounded replicas that can answer TRAPP/AG queries."""

    def __init__(self, cache_id: str, clock: Callable[[], float] = lambda: 0.0):
        self.cache_id = cache_id
        self.clock = clock
        self.catalog = Catalog()
        self._subscriptions: dict[ObjectKey, _Subscription] = {}
        #: Per-table view of the subscription keys, maintained alongside
        #: ``_subscriptions`` — routers and registries ask per-table
        #: questions on hot paths and must not scan every table's keys.
        self._keys_by_table: dict[str, set[ObjectKey]] = {}
        self._sources: dict[str, DataSource] = {}
        #: Cached tables whose tuples are partitioned across shard
        #: sources; cardinality messages for these must keep the shard
        #: map routed.
        self._sharded_tables: set[str] = set()
        #: The :class:`~repro.replication.fanout.CacheGroup` this cache
        #: replicates within, or ``None`` for a standalone cache.  Set by
        #: :meth:`CacheGroup.add_replica`; the cache reports subsequent
        #: subscriptions to it so the group's registry stays current.
        self.group = None
        # Statistics for experiments.
        self.refreshes_received = 0
        self.refresh_requests_sent = 0
        self.fanout_refreshes_received = 0
        # Event instruments, bound by attach_telemetry(); None keeps the
        # replication hot path untelemetered (the simulation default).
        self._t_fanout_pushes = None
        self._t_fanout_lag = None
        #: Fault oracle set by :meth:`FaultInjector.attach`; ``None`` (the
        #: default) keeps every refresh path exactly pre-fault.
        self.fault_injector = None

    def attach_telemetry(self, registry) -> None:
        """Bind this cache's event instruments to a metrics registry.

        Fan-out deliveries are *events with a latency* (the push left the
        source at ``sent_at``), so they are observed here rather than
        re-derived by a pull-time collector.
        """
        child_labels = {"cache": self.cache_id}
        self._t_fanout_pushes = registry.counter(
            "trapp_fanout_pushes_total",
            "Fan-out payloads delivered to each replica",
            ("cache",),
        ).labels(**child_labels)
        self._t_fanout_lag = registry.histogram(
            "trapp_fanout_delivery_lag_seconds",
            "Delivery lag of fan-out pushes (receive time minus sent_at)",
            ("cache",),
        ).labels(**child_labels)

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe_table(
        self,
        source: "DataSource | object",
        table_name: str,
        policy_factory: Callable[[], object] | None = None,
    ) -> Table:
        """Replicate an entire master table into this cache.

        ``source`` is a single :class:`DataSource` (the classic 1:1
        table↔source layout) or a
        :class:`~repro.replication.sharding.ShardedSource`, in which case
        every shard's partition is merged into one cached table and the
        tid→shard routing is recorded in the table's
        :class:`~repro.storage.table.ShardMap` — that map is what makes
        :meth:`source_of_tuple` O(1) and lets :meth:`refresh_batched`
        group a merged plan per shard.

        Every bounded column of every row is registered with its owning
        source's refresh monitor; exact/text columns are copied as-is
        (they never change without a cardinality message in this
        architecture).
        """
        if table_name in self.catalog:
            raise ReplicationProtocolError(
                f"cache {self.cache_id!r} already caches table {table_name!r}"
            )
        shards = getattr(source, "shards", None)
        if self.group is not None:
            # Vet the subscription against the group's invariants (fan-out
            # conflicts, replica source-set homogeneity) before touching
            # any state — a rejection must not leave a partial
            # subscription or a stale registry entry behind.
            incoming = (source,) if shards is None else tuple(shards)
            self.group.check_subscription(
                self, table_name, incoming, one_to_one=shards is None
            )
        if shards is None:
            master = source.table(table_name)
            cached = self.catalog.create_table(table_name, master.schema)
            self._subscribe_partition(source, master, cached, policy_factory)
            if self.group is not None:
                self.group._on_subscribe(
                    self, table_name, (source,), one_to_one=True
                )
        else:
            partitions = source.partitions(table_name)
            # Validate disjointness *before* touching any cache state: a
            # mid-subscription failure would otherwise leave a partially
            # replicated table (and live monitor registrations) behind,
            # with no way to resubscribe under the same name.
            owner_of: dict[int, str] = {}
            for shard, partition in partitions:
                for tid in partition.tids():
                    other = owner_of.get(tid)
                    if other is not None:
                        raise ReplicationProtocolError(
                            f"shards {other!r} and {shard.source_id!r} both "
                            f"serve tuple #{tid} of table {table_name!r}; "
                            "shard partitions must be disjoint"
                        )
                    owner_of[tid] = shard.source_id
            cached = self.catalog.create_table(
                table_name, partitions[0][1].schema
            )
            self._sharded_tables.add(table_name)
            for shard, partition in partitions:
                self._subscribe_partition(
                    shard, partition, cached, policy_factory, record_shard=True
                )
            if self.group is not None:
                self.group._on_subscribe(
                    self, table_name, tuple(shard for shard, _ in partitions)
                )
        return cached

    def unsubscribe_all(self) -> None:
        """Tear down every subscription and cached table (detach path).

        Disconnects from every source — which also evicts this cache's
        refresh-monitor trackers, so the per-object cache index holds no
        phantom subscribers — and resets the local catalog, leaving the
        cache object fresh enough to be re-admitted to a group later.
        """
        for source_id in sorted(self._sources):
            self._sources[source_id].disconnect_cache(self.cache_id)
        self._sources.clear()
        self._subscriptions.clear()
        self._keys_by_table.clear()
        self._sharded_tables.clear()
        self.catalog = Catalog()

    def adopt_snapshot(
        self, donor: "DataCache", batch_cost: BatchCostFunc | None = None
    ) -> BatchedRefreshReceipt:
        """Clone a sibling's cached state instead of cold-resubscribing.

        The late-joiner admission path: every cached table (rows, tids,
        shard routing) is copied from ``donor``, and for each of the
        donor's subscriptions this cache adopts the donor's *exact*
        bound function plus a deep copy of the donor's live width-policy
        state via :meth:`DataSource.adopt_subscription`.  No
        ``register()`` call is made, no refresh request is sent, and the
        source's ``query_initiated_refreshes`` counter does not move —
        the joiner enters the group's policy lockstep mid-sequence,
        which is what keeps K-cache ≡ 1-cache equivalence intact across
        admission.

        Returns a :class:`BatchedRefreshReceipt` pricing the transfer
        per source under ``batch_cost`` (default: 1 per tuple), mirroring
        :meth:`refresh_batched` accounting so schedulers can book the
        snapshot like any other bulk movement of bound state.
        """
        if list(self.catalog.names()) or self._subscriptions:
            raise ReplicationProtocolError(
                f"cache {self.cache_id!r} already holds state; snapshot "
                "admission requires a fresh cache"
            )
        for donor_table in donor.catalog:
            cached = self.catalog.create_table(
                donor_table.name, donor_table.schema
            )
            for row in donor_table.rows():
                cached.insert(row.as_dict(), tid=row.tid)
                shard_id = donor_table.shard_map.get(row.tid)
                if shard_id is not None:
                    cached.shard_map.assign(row.tid, shard_id)
        self._sharded_tables |= donor._sharded_tables
        # Connect to every donor source before adopting any subscription,
        # so value-initiated refreshes reach this cache from the first
        # tracked object onward.
        for source_id in sorted(donor._sources):
            source = donor._sources[source_id]
            self._sources[source_id] = source
            source.connect_cache(self.cache_id, self._on_message)
        keys_by_source: dict[str, list[ObjectKey]] = {}
        tids_by_source: dict[str, set[int]] = {}
        for key in sorted(
            donor._subscriptions, key=lambda k: (k.table, k.tid, k.column)
        ):
            subscription = donor._subscriptions[key]
            source = subscription.source
            policy = copy.deepcopy(source.monitor.policy(donor.cache_id, key))
            source.adopt_subscription(
                self.cache_id, key, subscription.bound_function, policy
            )
            self._add_subscription(
                key, _Subscription(source, subscription.bound_function)
            )
            keys_by_source.setdefault(source.source_id, []).append(key)
            tids_by_source.setdefault(source.source_id, set()).add(key.tid)
        receipts = tuple(
            SourceRefreshReceipt(
                source_id=source_id,
                tids=frozenset(tids_by_source[source_id]),
                keys=tuple(keys),
                cost=(
                    batch_cost(source_id, len(tids_by_source[source_id]))
                    if batch_cost is not None
                    else float(len(tids_by_source[source_id]))
                ),
            )
            for source_id, keys in sorted(keys_by_source.items())
        )
        return BatchedRefreshReceipt(per_source=receipts)

    def _add_subscription(self, key: ObjectKey, subscription: _Subscription) -> None:
        self._subscriptions[key] = subscription
        self._keys_by_table.setdefault(key.table, set()).add(key)

    def _drop_subscription(self, key: ObjectKey) -> None:
        if self._subscriptions.pop(key, None) is not None:
            self._keys_by_table[key.table].discard(key)

    def subscribed_sources(self) -> "list[DataSource]":
        """Every physical source (shard) this cache subscribes to."""
        return [self._sources[source_id] for source_id in sorted(self._sources)]

    def current_table_width(
        self, table_name: str, now: float | None = None
    ) -> float:
        """Total bound width of one table's subscriptions *right now*.

        Evaluates every subscribed bound function at ``now`` (default:
        the cache's clock) rather than reading the materialized cells,
        which only reflect the last ``sync_bounds`` — an idle replica's
        cells look deceptively tight while its true bounds have widened.
        Read-only: no cell is rewritten, no planner epoch is bumped.

        ``fsum`` keeps the total independent of the key set's iteration
        order: a snapshot-admitted joiner inserts the same subscriptions
        in a different order than its veterans, and siblings in policy
        lockstep must report bit-identical widths.
        """
        now = self.clock() if now is None else now
        return math.fsum(
            2.0 * self._subscriptions[key].bound_function.half_width_at(now)
            for key in self._keys_by_table.get(table_name, ())
        )

    def source_ids_of_table(self, table_name: str) -> frozenset[str]:
        """Source (shard) ids serving one cached table's subscriptions.

        Derived from the live subscription map plus the shard routing, so
        it reflects what the cache can actually refresh; shards that
        currently own no tuples are invisible here (callers comparing
        source sets should compare by subset, not equality).
        """
        ids = {
            self._subscriptions[key].source.source_id
            for key in self._keys_by_table.get(table_name, ())
        }
        if table_name in self.catalog:
            ids.update(self.catalog.table(table_name).shard_map.shards())
        return frozenset(ids)

    def _subscribe_partition(
        self,
        source: DataSource,
        master: Table,
        cached: Table,
        policy_factory: Callable[[], object] | None,
        record_shard: bool = False,
    ) -> None:
        """Replicate one source's rows (a whole table, or one shard)."""
        self._sources.setdefault(source.source_id, source)
        source.connect_cache(self.cache_id, self._on_message)
        for row in master.rows():
            values = {}
            for column in master.schema:
                if column.is_bounded:
                    values[column.name] = 0.0  # placeholder, set below
                else:
                    values[column.name] = row[column.name]
            cached.insert(values, tid=row.tid)
            if record_shard:
                cached.shard_map.assign(row.tid, source.source_id)
            for column in master.schema.bounded_columns:
                key = ObjectKey(cached.name, row.tid, column.name)
                policy = policy_factory() if policy_factory is not None else None
                payload = source.register(self.cache_id, key, policy=policy)
                self._add_subscription(
                    key, _Subscription(source, payload.bound_function)
                )
                cached.update_value(
                    row.tid, column.name, payload.bound_function.at(self.clock())
                )

    # ------------------------------------------------------------------
    # Clock synchronization
    # ------------------------------------------------------------------
    def sync_bounds(self) -> None:
        """Re-evaluate every cached bound at the current time.

        Bound functions widen as time passes; queries must see the bound at
        query time, not at last-message time.

        Unchanged bounds are skipped: rewriting a cell with the value it
        already holds would churn every index and bump the columnar
        store's version, invalidating the planner's epoch-cached
        sorted-width orderings — under the service's repeated
        sync-per-query discipline that skip is what lets CHOOSE_REFRESH
        reuse orderings across queries while the clock stands still.
        """
        now = self.clock()
        for key, subscription in self._subscriptions.items():
            table = self.catalog.table(key.table)
            if key.tid not in table:
                continue
            evaluated = subscription.bound_function.at(now)
            if table.row(key.tid)[key.column] != evaluated:
                table.update_value(key.tid, key.column, evaluated)

    # ------------------------------------------------------------------
    # RefreshProvider protocol (query-initiated refreshes)
    # ------------------------------------------------------------------
    def refresh(self, table: Table, tids: Iterable[int]) -> None:
        """Collapse the named tuples' bounds by asking their sources.

        Groups keys per source so each source receives one request (the
        batching extension can then amortize transfer costs).  This is
        the serial protocol path with no scheduler above it to retry or
        degrade, so a partial batch raises
        :class:`~repro.errors.SourceUnavailableError` rather than
        silently leaving some bounds wide.
        """
        receipt = self.refresh_batched(table, tids)
        if receipt.failures:
            failed = ", ".join(sorted(set(receipt.failed_sources)))
            raise SourceUnavailableError(
                f"refresh of table {table.name!r} failed at source(s) {failed}",
                sources=receipt.failed_sources,
            )

    def refresh_batched(
        self,
        table: Table,
        tids: Iterable[int],
        batch_cost: BatchCostFunc | None = None,
    ) -> BatchedRefreshReceipt:
        """Refresh an externally-batched set of tuples, with accounting.

        This is the entry point for cross-query schedulers: ``tids`` may be
        the merged plans of many concurrent queries.  Keys are grouped per
        source — for a sharded table, per *shard* — each source receives
        exactly one :class:`~repro.replication.messages.RefreshRequest`,
        and the returned receipt reports per source which tuples were
        refreshed and the cost actually paid under ``batch_cost``
        (default: 1 per tuple, the uniform model).  Shards none of the
        tuples live on are not contacted and get no receipt, so a
        sharded table's receipt is exactly its per-shard §8.2 accounting.

        With a :class:`~repro.faults.FaultInjector` attached, a crashed
        cache raises :class:`~repro.errors.CacheUnavailableError` (the
        scheduler fails the batch over to a sibling replica), and
        per-source faults — outage windows, forced failures, real
        protocol errors from the contact itself — become
        :class:`RefreshFailure` entries on the receipt instead of
        raising, so one dead shard cannot void the rest of the batch.
        """
        injector = self.fault_injector
        if injector is not None:
            injector.check_cache(self.cache_id)
        tids = sorted(set(tids))
        if not tids:
            return BatchedRefreshReceipt(per_source=())
        by_source: dict[str, list[ObjectKey]] = {}
        tids_by_source: dict[str, set[int]] = {}
        for tid in tids:
            for column in table.schema.bounded_columns:
                key = ObjectKey(table.name, tid, column.name)
                subscription = self._subscriptions.get(key)
                if subscription is None:
                    raise ReplicationProtocolError(
                        f"cache {self.cache_id!r} holds no subscription for {key}"
                    )
                by_source.setdefault(subscription.source.source_id, []).append(key)
                tids_by_source.setdefault(subscription.source.source_id, set()).add(tid)
        receipts: list[SourceRefreshReceipt] = []
        failures: list[RefreshFailure] = []
        for source_id, keys in by_source.items():
            source = self._sources[source_id]
            request = RefreshRequest(cache_id=self.cache_id, keys=tuple(keys))
            self.refresh_requests_sent += 1
            source_tids = frozenset(tids_by_source[source_id])
            latency = 0.0
            try:
                if injector is not None:
                    injector.check_source(source_id)
                    latency = injector.latency_of(source_id)
                response = source.handle_refresh_request(request)
            except TrappError as exc:
                failures.append(
                    RefreshFailure(
                        source_id=source_id,
                        tids=source_tids,
                        error=type(exc).__name__,
                    )
                )
                continue
            self._apply_refresh(response)
            cost = (
                batch_cost(source_id, len(source_tids))
                if batch_cost is not None
                else float(len(source_tids))
            )
            receipts.append(
                SourceRefreshReceipt(
                    source_id=source_id,
                    tids=source_tids,
                    keys=tuple(keys),
                    cost=cost,
                    latency=latency,
                )
            )
        return BatchedRefreshReceipt(
            per_source=tuple(receipts), failures=tuple(failures)
        )

    def source_of_tuple(self, table: Table, tid: int) -> str:
        """The source (shard) id serving a tuple's bounded columns.

        Used by cross-query schedulers to group refresh candidates per
        shard without reaching into the subscription map.  Sharded
        tables answer from the table's :class:`ShardMap` in O(1); the
        1:1 layout falls back to probing the subscription map.
        """
        shard_id = table.shard_map.get(tid)
        if shard_id is not None:
            return shard_id
        for column in table.schema.bounded_columns:
            subscription = self._subscriptions.get(
                ObjectKey(table.name, tid, column.name)
            )
            if subscription is not None:
                return subscription.source.source_id
        raise ReplicationProtocolError(
            f"cache {self.cache_id!r} holds no subscription for tuple "
            f"#{tid} of table {table.name!r}"
        )

    def sources_of_table(self, table: Table) -> list[str]:
        """Distinct source ids serving a table — its shard fan-in.

        One element for the classic layout, N for a table subscribed
        from an N-shard :class:`~repro.replication.sharding.ShardedSource`
        (only shards that currently own tuples are listed).  Empty for
        an empty unsharded table.
        """
        if table.is_sharded:
            return table.shard_map.shards()
        for row in table:
            return [self.source_of_tuple(table, row.tid)]
        return []

    # ------------------------------------------------------------------
    # Incoming messages (value-initiated refreshes, cardinality changes)
    # ------------------------------------------------------------------
    def _on_message(self, cache_id: str, message: object) -> None:
        if isinstance(message, Refresh):
            self._apply_refresh(message)
        elif isinstance(message, CardinalityChange):
            self._apply_cardinality_change(message)
        elif isinstance(message, MasterMigration):
            self._apply_master_migration(message)
        else:  # pragma: no cover - defensive
            raise ReplicationProtocolError(f"unexpected message {message!r}")

    def _apply_refresh(self, refresh: Refresh) -> None:
        now = self.clock()
        if refresh.reason is RefreshReason.FANOUT:
            self.fanout_refreshes_received += len(refresh.payloads)
            if self._t_fanout_pushes is not None:
                self._t_fanout_pushes.inc(len(refresh.payloads))
                self._t_fanout_lag.observe(max(0.0, now - refresh.sent_at))
        for payload in refresh.payloads:
            key = payload.key
            subscription = self._subscriptions.get(key)
            if subscription is None:
                # Late message for an object deleted meanwhile; drop it.
                continue
            subscription.bound_function = payload.bound_function
            table = self.catalog.table(key.table)
            if key.tid in table:
                table.update_value(key.tid, key.column, payload.bound_function.at(now))
            self.refreshes_received += 1

    def _apply_cardinality_change(self, change: CardinalityChange) -> None:
        table = self.catalog.table(change.table)
        source = self._sources[change.source_id]
        if change.is_insert:
            assert change.values is not None
            values = dict(change.values)
            table.insert(values, tid=change.tid)
            if change.table in self._sharded_tables:
                table.shard_map.assign(change.tid, change.source_id)
            for column in table.schema.bounded_columns:
                key = ObjectKey(change.table, change.tid, column.name)
                payload = source.register(self.cache_id, key)
                self._add_subscription(
                    key, _Subscription(source, payload.bound_function)
                )
                table.update_value(
                    change.tid, column.name, payload.bound_function.at(self.clock())
                )
        else:
            if change.tid in table:
                table.delete(change.tid)
            for column in table.schema.column_names:
                self._drop_subscription(ObjectKey(change.table, change.tid, column))

    def _apply_master_migration(self, migration: MasterMigration) -> None:
        """Repoint one tuple's subscriptions at its new master shard.

        Bound functions and cached cells are untouched — migration moves
        ownership, not values — so only the shard routing and each
        subscription's source pointer change.
        """
        new_source = self._sources.get(migration.to_source_id)
        if new_source is None:
            raise ReplicationProtocolError(
                f"cache {self.cache_id!r} is not connected to migration "
                f"target {migration.to_source_id!r}"
            )
        table = self.catalog.table(migration.table)
        if migration.table in self._sharded_tables:
            table.shard_map.assign(migration.tid, migration.to_source_id)
        for column in table.schema.column_names:
            subscription = self._subscriptions.get(
                ObjectKey(migration.table, migration.tid, column)
            )
            if subscription is not None:
                subscription.source = new_source

    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def bound_function_of(self, key: ObjectKey) -> BoundFunction:
        subscription = self._subscriptions.get(key)
        if subscription is None:
            raise ReplicationProtocolError(
                f"cache {self.cache_id!r} holds no subscription for {key}"
            )
        return subscription.bound_function
