"""TRAPP/AG — precision-performance tradeoff for aggregation queries over
replicated data.

A from-scratch reproduction of Olston & Widom (VLDB 2000).  Caches store
guaranteed value *bounds* instead of stale exact copies; queries carry a
``WITHIN R`` precision constraint; the system combines cached bounds with
minimum-cost source refreshes to return a guaranteed interval answer no
wider than ``R``.

Quick start::

    from repro import TrappSystem
    from repro.workloads import paper_master_table

    system = TrappSystem()
    source = system.add_source("node")
    source.add_table(paper_master_table())
    cache = system.add_cache("monitor")
    cache.subscribe_table(source, "links")
    answer = system.query("monitor", "SELECT SUM(latency) WITHIN 5 FROM links")
    print(answer.bound)   # an interval at most 5 wide containing the truth

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.core import (
    AbsolutePrecision,
    Bound,
    BoundedAnswer,
    PrecisionConstraint,
    QueryExecutor,
    RelativePrecision,
    Trilean,
    execute_query,
)
from repro.replication import DataCache, DataSource, TrappSystem
from repro.sql import parse_statement

# Importing the extensions package registers the §8 extension aggregates
# (currently MEDIAN) with the aggregate and CHOOSE_REFRESH registries, so
# SQL like "SELECT MEDIAN(price) WITHIN 1 FROM stocks" works out of the box.
import repro.extensions  # noqa: E402,F401  (registration side effect)

__version__ = "1.0.0"

__all__ = [
    "Bound",
    "Trilean",
    "BoundedAnswer",
    "PrecisionConstraint",
    "AbsolutePrecision",
    "RelativePrecision",
    "QueryExecutor",
    "execute_query",
    "TrappSystem",
    "DataSource",
    "DataCache",
    "parse_statement",
    "__version__",
]
