"""Closed real intervals ("bounds") — the fundamental TRAPP/AG data type.

A TRAPP cache stores, for each replicated data object ``O_i``, a *bound*
``[L_i, H_i]`` that is guaranteed to contain the current master value
``V_i``.  This module provides :class:`Bound`, an immutable closed interval
over the extended reals, together with the interval arithmetic needed by
the bounded aggregate evaluators (sum, negation, scaling, division by a
positive count, hull/intersection, and three-valued comparisons).

The three-valued comparisons return :class:`Trilean` values: a comparison
between two intervals is ``TRUE`` when it holds for *every* pair of
realizations, ``FALSE`` when it holds for *none*, and ``MAYBE`` otherwise.
These are exactly the ``Certain``/``Possible`` transforms of the paper's
Appendix D, lifted to the value level.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.errors import BoundError

Number = Union[int, float]

__all__ = ["Bound", "Trilean", "exact", "hull", "intersect_all"]


class Trilean(enum.Enum):
    """Three-valued logic result for comparisons over intervals."""

    FALSE = 0
    MAYBE = 1
    TRUE = 2

    def __invert__(self) -> "Trilean":
        if self is Trilean.TRUE:
            return Trilean.FALSE
        if self is Trilean.FALSE:
            return Trilean.TRUE
        return Trilean.MAYBE

    def __and__(self, other: "Trilean") -> "Trilean":
        if Trilean.FALSE in (self, other):
            return Trilean.FALSE
        if Trilean.MAYBE in (self, other):
            return Trilean.MAYBE
        return Trilean.TRUE

    def __or__(self, other: "Trilean") -> "Trilean":
        if Trilean.TRUE in (self, other):
            return Trilean.TRUE
        if Trilean.MAYBE in (self, other):
            return Trilean.MAYBE
        return Trilean.FALSE

    @property
    def is_certain(self) -> bool:
        """True iff the comparison holds for every realization."""
        return self is Trilean.TRUE

    @property
    def is_possible(self) -> bool:
        """True iff the comparison holds for at least one realization."""
        return self is not Trilean.FALSE

    @staticmethod
    def of(value: bool) -> "Trilean":
        """Lift an ordinary boolean into the three-valued domain."""
        return Trilean.TRUE if value else Trilean.FALSE


@dataclass(frozen=True, slots=True)
class Bound:
    """An immutable closed interval ``[lo, hi]`` over the extended reals.

    ``lo = -inf`` / ``hi = +inf`` model completely unknown values; a
    zero-width bound (``lo == hi``) models an exactly-known value, which is
    what a tuple's bound collapses to immediately after a refresh.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        lo = float(self.lo)
        hi = float(self.hi)
        if math.isnan(lo) or math.isnan(hi):
            raise BoundError("bound endpoints must not be NaN")
        if lo > hi:
            raise BoundError(f"bound lower endpoint {lo} exceeds upper {hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def exact(value: Number) -> "Bound":
        """The zero-width bound ``[value, value]``."""
        return Bound(value, value)

    @staticmethod
    def unbounded() -> "Bound":
        """The bound ``[-inf, +inf]`` (nothing known about the value)."""
        return Bound(-math.inf, math.inf)

    @staticmethod
    def around(center: Number, half_width: Number) -> "Bound":
        """The symmetric bound ``[center - half_width, center + half_width]``."""
        if half_width < 0:
            raise BoundError(f"half_width must be non-negative, got {half_width}")
        return Bound(center - half_width, center + half_width)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """``hi - lo``; the paper's measure of imprecision.

        Defined as 0 for degenerate infinite points (``[+inf, +inf]``,
        produced by empty-set aggregates) where IEEE subtraction would give
        NaN.
        """
        if self.lo == self.hi:
            return 0.0
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """The center of the interval (undefined for half-infinite bounds)."""
        return (self.lo + self.hi) / 2.0

    @property
    def is_exact(self) -> bool:
        """True iff the bound pins down a single value."""
        return self.lo == self.hi

    @property
    def is_finite(self) -> bool:
        """True iff both endpoints are finite."""
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def contains(self, value: Number) -> bool:
        """True iff ``value`` is a possible realization of this bound."""
        return self.lo <= value <= self.hi

    def contains_bound(self, other: "Bound") -> bool:
        """True iff every realization of ``other`` lies inside ``self``."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Bound") -> bool:
        """True iff the two intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def clamp(self, value: Number) -> float:
        """Project ``value`` onto the interval."""
        return min(max(float(value), self.lo), self.hi)

    # ------------------------------------------------------------------
    # Interval arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Bound | Number") -> "Bound":
        other = _as_bound(other)
        return Bound(self.lo + other.lo, self.hi + other.hi)

    __radd__ = __add__

    def __neg__(self) -> "Bound":
        return Bound(-self.hi, -self.lo)

    def __sub__(self, other: "Bound | Number") -> "Bound":
        return self + (-_as_bound(other))

    def __rsub__(self, other: "Bound | Number") -> "Bound":
        return _as_bound(other) + (-self)

    def __mul__(self, other: "Bound | Number") -> "Bound":
        other = _as_bound(other)
        candidates = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        # 0 * inf is NaN under IEEE; in interval arithmetic it is 0.
        candidates = [0.0 if math.isnan(c) else c for c in candidates]
        return Bound(min(candidates), max(candidates))

    __rmul__ = __mul__

    def __truediv__(self, other: "Bound | Number") -> "Bound":
        other = _as_bound(other)
        if other.lo <= 0 <= other.hi:
            raise BoundError(f"division by interval {other} containing zero")
        return self * Bound(1.0 / other.hi, 1.0 / other.lo)

    def scale(self, factor: Number) -> "Bound":
        """Multiply both endpoints by a scalar, keeping orientation."""
        return self * Bound.exact(factor)

    def shift(self, offset: Number) -> "Bound":
        """Translate the interval by a scalar."""
        return Bound(self.lo + offset, self.hi + offset)

    def widen(self, amount: Number) -> "Bound":
        """Symmetrically expand the interval by ``amount`` on each side."""
        if amount < 0:
            raise BoundError(f"widen amount must be non-negative, got {amount}")
        return Bound(self.lo - amount, self.hi + amount)

    def extend_to_zero(self) -> "Bound":
        """The smallest interval containing both ``self`` and 0.

        Used by the SUM-with-predicate optimizer: a tuple in ``T?`` may turn
        out not to satisfy the predicate, contributing 0 to the sum, so its
        effective bound must be stretched to include zero (paper §6.2).
        """
        return Bound(min(self.lo, 0.0), max(self.hi, 0.0))

    def intersect(self, other: "Bound") -> "Bound":
        """The intersection of two overlapping intervals.

        Raises :class:`BoundError` when the intervals are disjoint.
        """
        if not self.overlaps(other):
            raise BoundError(f"intervals {self} and {other} are disjoint")
        return Bound(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Bound") -> "Bound":
        """The smallest interval containing both operands."""
        return Bound(min(self.lo, other.lo), max(self.hi, other.hi))

    # ------------------------------------------------------------------
    # Three-valued comparisons (Appendix D translation rules)
    # ------------------------------------------------------------------
    def cmp_lt(self, other: "Bound | Number") -> Trilean:
        """Three-valued ``self < other``.

        Certain when ``hi < other.lo``; impossible when ``lo >= other.hi``.
        """
        other = _as_bound(other)
        if self.hi < other.lo:
            return Trilean.TRUE
        if self.lo >= other.hi:
            return Trilean.FALSE
        return Trilean.MAYBE

    def cmp_le(self, other: "Bound | Number") -> Trilean:
        other = _as_bound(other)
        if self.hi <= other.lo:
            return Trilean.TRUE
        if self.lo > other.hi:
            return Trilean.FALSE
        return Trilean.MAYBE

    def cmp_gt(self, other: "Bound | Number") -> Trilean:
        return _as_bound(other).cmp_lt(self)

    def cmp_ge(self, other: "Bound | Number") -> Trilean:
        return _as_bound(other).cmp_le(self)

    def cmp_eq(self, other: "Bound | Number") -> Trilean:
        """Three-valued equality.

        Certain only when both intervals are the same single point; false
        when the intervals are disjoint; maybe otherwise.
        """
        other = _as_bound(other)
        if self.is_exact and other.is_exact and self.lo == other.lo:
            return Trilean.TRUE
        if not self.overlaps(other):
            return Trilean.FALSE
        return Trilean.MAYBE

    def cmp_ne(self, other: "Bound | Number") -> Trilean:
        return ~self.cmp_eq(other)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[float]:
        yield self.lo
        yield self.hi

    def __str__(self) -> str:
        return f"[{_fmt(self.lo)}, {_fmt(self.hi)}]"

    def __repr__(self) -> str:
        return f"Bound({_fmt(self.lo)}, {_fmt(self.hi)})"


def _fmt(x: float) -> str:
    if math.isfinite(x) and x == int(x):
        return str(int(x))
    return f"{x:g}"


def _as_bound(value: "Bound | Number") -> Bound:
    if isinstance(value, Bound):
        return value
    return Bound.exact(value)


def exact(value: Number) -> Bound:
    """Module-level alias for :meth:`Bound.exact`."""
    return Bound.exact(value)


def hull(bounds: Iterable[Bound]) -> Bound:
    """The smallest interval containing every bound in ``bounds``.

    The hull of an empty collection is defined as the empty-aggregate
    convention from the paper (min of nothing = +inf, max = -inf), which we
    surface as a :class:`BoundError` because ``[+inf, -inf]`` is not a valid
    interval; callers handle empty inputs explicitly.
    """
    it = iter(bounds)
    try:
        acc = next(it)
    except StopIteration:
        raise BoundError("hull of an empty collection is undefined") from None
    for b in it:
        acc = acc.hull(b)
    return acc


def intersect_all(bounds: Iterable[Bound]) -> Bound:
    """The intersection of every bound in ``bounds`` (must be non-empty)."""
    it = iter(bounds)
    try:
        acc = next(it)
    except StopIteration:
        raise BoundError("intersection of an empty collection is undefined") from None
    for b in it:
        acc = acc.intersect(b)
    return acc
