"""0/1 knapsack solvers backing the SUM/AVG CHOOSE_REFRESH optimizers.

Paper §5.2 reduces "choose the cheapest set of tuples to refresh for a
bounded SUM query" to the 0/1 Knapsack Problem: the knapsack holds the
tuples *not* refreshed; an item's weight is its bound width ``H_i - L_i``;
its profit is its refresh cost ``C_i``; the capacity is the precision
constraint ``R``.  Maximizing the profit kept in the knapsack minimizes the
cost of the refreshed complement.

Four solvers are provided:

* :func:`solve_exact_dp` — exact dynamic program over (scaled) profits,
  ``O(n · P)`` time for total integer profit ``P``.  Used directly when
  profits are small integers, and as the inner engine of the approximation.
* :func:`solve_ibarra_kim` — the ε-approximation scheme of Ibarra & Kim
  (JACM 1975) in its standard profit-scaling form: profits are rounded down
  to multiples of ``ε · P_max / n`` before the exact DP, guaranteeing total
  kept profit ≥ (1 − ε) · OPT in ``O(n log n + n · (n/ε))`` time.  This is
  the algorithm the paper's Figures 5 and 6 exercise.
* :func:`solve_greedy_uniform` — ascending-weight greedy, optimal for the
  uniform-profit special case the paper singles out (§5.2), ``O(n log n)``.
* :func:`solve_brute_force` — exponential enumeration, used by tests to
  certify the other solvers on small instances.

All solvers accept real-valued weights; only profits are discretized.
Items with non-positive weight always fit and are placed in the knapsack
unconditionally (a zero-width bound consumes none of the precision budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable, Sequence

from repro.errors import OptimizerError

__all__ = [
    "KnapsackItem",
    "KnapsackSolution",
    "solve_exact_dp",
    "solve_ibarra_kim",
    "solve_greedy_uniform",
    "solve_greedy_ratio",
    "solve_brute_force",
]


@dataclass(frozen=True, slots=True)
class KnapsackItem:
    """One candidate item: an opaque id, a weight, and a profit."""

    item_id: int
    weight: float
    profit: float

    def __post_init__(self) -> None:
        if math.isnan(self.weight) or math.isnan(self.profit):
            raise OptimizerError("knapsack weight/profit must not be NaN")
        if self.profit < 0:
            raise OptimizerError(
                f"negative profit {self.profit} for item {self.item_id}; "
                "refresh costs must be non-negative"
            )


@dataclass(frozen=True, slots=True)
class KnapsackSolution:
    """The chosen (kept) item ids plus solution totals."""

    chosen: frozenset[int]
    total_profit: float
    total_weight: float

    @staticmethod
    def of(items: Iterable[KnapsackItem], chosen_ids: Iterable[int]) -> "KnapsackSolution":
        chosen = frozenset(chosen_ids)
        total_profit = sum(i.profit for i in items if i.item_id in chosen)
        total_weight = sum(i.weight for i in items if i.item_id in chosen)
        return KnapsackSolution(chosen, total_profit, total_weight)


def _validate(items: Sequence[KnapsackItem], capacity: float) -> None:
    if math.isnan(capacity):
        raise OptimizerError("knapsack capacity must not be NaN")
    seen: set[int] = set()
    for item in items:
        if item.item_id in seen:
            raise OptimizerError(f"duplicate knapsack item id {item.item_id}")
        seen.add(item.item_id)


def _split_free_items(
    items: Sequence[KnapsackItem], capacity: float
) -> tuple[list[KnapsackItem], list[int], list[int]]:
    """Separate items into (contenders, always-in ids, never-in ids).

    Non-positive-weight items are free profit; items heavier than the
    capacity can never fit.
    """
    contenders: list[KnapsackItem] = []
    always_in: list[int] = []
    never_in: list[int] = []
    for item in items:
        if item.weight <= 0:
            always_in.append(item.item_id)
        elif item.weight > capacity:
            never_in.append(item.item_id)
        else:
            contenders.append(item)
    return contenders, always_in, never_in


# ----------------------------------------------------------------------
# Exact dynamic program (profit dimension)
# ----------------------------------------------------------------------
def solve_exact_dp(
    items: Sequence[KnapsackItem],
    capacity: float,
    profit_of: Callable[[KnapsackItem], int] | None = None,
) -> KnapsackSolution:
    """Exact 0/1 knapsack via minimum-weight-per-profit DP.

    ``profit_of`` maps each item to an *integer* profit (defaults to
    ``round(item.profit)``, which is exact whenever profits are integral,
    as with the paper's integer refresh costs).  Real-valued weights are
    handled natively.  Runs in ``O(n · P)`` time and space for total
    profit ``P``.
    """
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)

    if profit_of is None:
        def profit_of(item: KnapsackItem) -> int:
            scaled = round(item.profit)
            if abs(scaled - item.profit) > 1e-9:
                raise OptimizerError(
                    f"solve_exact_dp requires integral profits; item "
                    f"{item.item_id} has profit {item.profit}. "
                    "Use solve_ibarra_kim for real-valued profits."
                )
            return scaled

    int_profits = [profit_of(item) for item in contenders]
    total_profit = sum(int_profits)

    # min_weight[p] = least total weight achieving integer profit exactly p.
    min_weight = [math.inf] * (total_profit + 1)
    min_weight[0] = 0.0
    # For reconstruction: take[i][p] is True when item i is used to reach p.
    take: list[list[bool]] = []
    for item, p_i in zip(contenders, int_profits):
        row = [False] * (total_profit + 1)
        if p_i == 0:
            # Zero-profit contenders never help; leave them out.
            take.append(row)
            continue
        for p in range(total_profit, p_i - 1, -1):
            candidate = min_weight[p - p_i] + item.weight
            if candidate < min_weight[p]:
                min_weight[p] = candidate
                row[p] = True
        take.append(row)

    best_profit = max(
        (p for p in range(total_profit + 1) if min_weight[p] <= capacity),
        default=0,
    )

    chosen: set[int] = set(always_in)
    p = best_profit
    for i in range(len(contenders) - 1, -1, -1):
        if p > 0 and take[i][p]:
            chosen.add(contenders[i].item_id)
            p -= int_profits[i]
    return KnapsackSolution.of(items, chosen)


# ----------------------------------------------------------------------
# Ibarra–Kim ε-approximation
# ----------------------------------------------------------------------
def solve_ibarra_kim(
    items: Sequence[KnapsackItem],
    capacity: float,
    epsilon: float,
) -> KnapsackSolution:
    """ε-approximate 0/1 knapsack by profit scaling (Ibarra & Kim, 1975).

    Profits are floored to multiples of ``K = ε · P_max / n`` and the exact
    DP is run over the scaled instance.  The classical analysis gives kept
    profit ≥ (1 − ε) · OPT; the DP dimension shrinks from ``P`` to
    ``O(n / ε)``, so smaller ε costs quadratically more time — exactly the
    tradeoff the paper's Figure 5 plots.
    """
    if not 0 < epsilon < 1:
        raise OptimizerError(f"epsilon must lie in (0, 1), got {epsilon}")
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)
    if not contenders:
        return KnapsackSolution.of(items, always_in)

    p_max = max(item.profit for item in contenders)
    if p_max <= 0:
        return KnapsackSolution.of(items, always_in)
    scale = epsilon * p_max / len(contenders)

    solution = solve_exact_dp(
        contenders,
        capacity,
        profit_of=lambda item: int(item.profit / scale),
    )
    return KnapsackSolution.of(items, set(solution.chosen) | set(always_in))


# ----------------------------------------------------------------------
# Greedy variants
# ----------------------------------------------------------------------
def solve_greedy_uniform(
    items: Sequence[KnapsackItem], capacity: float
) -> KnapsackSolution:
    """Ascending-weight greedy; optimal when all profits are equal (§5.2).

    Placing the lightest items first maximizes the *number* of items kept,
    which maximizes total profit under uniform profits.  ``O(n log n)``
    (sublinear with a width index, which
    :meth:`repro.storage.table.Table.create_endpoint_indexes` provides).
    """
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)
    chosen = set(always_in)
    remaining = capacity
    for item in sorted(contenders, key=lambda i: (i.weight, i.item_id)):
        if item.weight <= remaining:
            chosen.add(item.item_id)
            remaining -= item.weight
    return KnapsackSolution.of(items, chosen)


def solve_greedy_ratio(
    items: Sequence[KnapsackItem], capacity: float
) -> KnapsackSolution:
    """Classic profit/weight-density greedy with the best-single fallback.

    Guarantees at least half the optimal profit; included as an ablation
    baseline against the Ibarra–Kim scheme (not used by the paper).
    """
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)
    chosen = set(always_in)
    remaining = capacity
    greedy_profit = 0.0
    for item in sorted(
        contenders, key=lambda i: (-(i.profit / i.weight), i.item_id)
    ):
        if item.weight <= remaining:
            chosen.add(item.item_id)
            remaining -= item.weight
            greedy_profit += item.profit
    # The 2-approximation requires comparing with the single best item.
    best_single = max(contenders, key=lambda i: i.profit, default=None)
    if best_single is not None and best_single.profit > greedy_profit:
        chosen = set(always_in) | {best_single.item_id}
    return KnapsackSolution.of(items, chosen)


# ----------------------------------------------------------------------
# Brute force (test oracle)
# ----------------------------------------------------------------------
def solve_brute_force(
    items: Sequence[KnapsackItem], capacity: float
) -> KnapsackSolution:
    """Exhaustive search over all subsets; the optimality oracle for tests.

    Exponential — callers must keep instances small (≤ ~20 contenders).
    """
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)
    if len(contenders) > 22:
        raise OptimizerError(
            f"brute force limited to 22 contenders, got {len(contenders)}"
        )
    best_ids: tuple[int, ...] = ()
    best_profit = -1.0
    for r in range(len(contenders) + 1):
        for combo in combinations(contenders, r):
            weight = sum(i.weight for i in combo)
            if weight > capacity:
                continue
            profit = sum(i.profit for i in combo)
            if profit > best_profit:
                best_profit = profit
                best_ids = tuple(i.item_id for i in combo)
    return KnapsackSolution.of(items, set(best_ids) | set(always_in))
