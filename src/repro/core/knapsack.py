"""0/1 knapsack solvers backing the SUM/AVG CHOOSE_REFRESH optimizers.

Paper §5.2 reduces "choose the cheapest set of tuples to refresh for a
bounded SUM query" to the 0/1 Knapsack Problem: the knapsack holds the
tuples *not* refreshed; an item's weight is its bound width ``H_i - L_i``;
its profit is its refresh cost ``C_i``; the capacity is the precision
constraint ``R``.  Maximizing the profit kept in the knapsack minimizes the
cost of the refreshed complement.

Two APIs are provided over one solver core:

* the **object API** (:func:`solve_exact_dp`, :func:`solve_ibarra_kim`,
  :func:`solve_greedy_uniform`, :func:`solve_greedy_ratio`,
  :func:`solve_brute_force`) over :class:`KnapsackItem` sequences — the
  reference interface, kept for row-at-a-time callers and tests;
* the **vector API** (:func:`solve_vector`) over parallel weight/profit
  sequences (stdlib ``array('d')``/``array('q')`` or any indexables) —
  the planner's hot path, consuming candidate vectors harvested straight
  from a table's columnar mirror with no per-tuple Python objects.

The exact dynamic program is a *sparse* minimum-weight-per-profit DP: the
state set is the Pareto frontier of (profit, weight) pairs held in flat
parallel arrays with dominance pruning, and plans are reconstructed by
following per-state parent pointers into an append-only arena.  Memory is
``O(states created)`` instead of the ``n × P`` boolean take-matrix the
first implementation allocated, and runtime collapses whenever few
distinct profit sums are achievable (the common small-integer-cost case).

:func:`solve_ibarra_kim` is the ε-approximation scheme of Ibarra & Kim
(JACM 1975): profits are floored to multiples of ``K = ε · P̂ / n`` where
``P̂`` is the density-greedy profit (``P̂ ≤ OPT ≤ 2 P̂``), guaranteeing
kept profit ≥ (1 − ε) · OPT while capping the feasible scaled-profit range
— and hence the DP frontier — at ``O(n / ε)`` states.  With
``early_exit`` the DP also stops as soon as the best feasible profit
reaches ``(1 − ε)`` of the fractional (profit-prefix) upper bound, which
preserves the guarantee; the vector planner path enables it, the object
API defaults to the full DP for reproducibility.

All solvers accept real-valued weights; only profits are discretized.
Items with non-positive weight always fit and are placed in the knapsack
unconditionally (a zero-width bound consumes none of the precision
budget); items wider than the capacity can never be kept.
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_right
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import OptimizerError

__all__ = [
    "KnapsackItem",
    "KnapsackSolution",
    "VectorSolution",
    "solve_exact_dp",
    "solve_ibarra_kim",
    "solve_greedy_uniform",
    "solve_greedy_ratio",
    "solve_brute_force",
    "solve_vector",
]

#: Fallback ε when the vector API must approximate and none was supplied
#: (the paper finds 0.1 "very close to optimal" — Figure 5 discussion).
_FALLBACK_EPSILON = 0.1


@dataclass(frozen=True, slots=True)
class KnapsackItem:
    """One candidate item: an opaque id, a weight, and a profit."""

    item_id: int
    weight: float
    profit: float

    def __post_init__(self) -> None:
        if math.isnan(self.weight) or math.isnan(self.profit):
            raise OptimizerError("knapsack weight/profit must not be NaN")
        if self.profit < 0:
            raise OptimizerError(
                f"negative profit {self.profit} for item {self.item_id}; "
                "refresh costs must be non-negative"
            )


@dataclass(frozen=True, slots=True)
class KnapsackSolution:
    """The chosen (kept) item ids plus solution totals."""

    chosen: frozenset[int]
    total_profit: float
    total_weight: float

    @staticmethod
    def of(items: Iterable[KnapsackItem], chosen_ids: Iterable[int]) -> "KnapsackSolution":
        chosen = frozenset(chosen_ids)
        total_profit = sum(i.profit for i in items if i.item_id in chosen)
        total_weight = sum(i.weight for i in items if i.item_id in chosen)
        return KnapsackSolution(chosen, total_profit, total_weight)


@dataclass(frozen=True, slots=True)
class VectorSolution:
    """A plan over candidate *positions* (the vector API's result).

    ``refresh`` holds the positions NOT kept in the knapsack — i.e. the
    tuples CHOOSE_REFRESH must refresh — because that complement is what
    every caller wants; ``refresh_profit`` is its total cost.
    """

    refresh: tuple[int, ...]
    refresh_profit: float
    kept_profit: float
    kept_weight: float


def _validate(items: Sequence[KnapsackItem], capacity: float) -> None:
    if math.isnan(capacity):
        raise OptimizerError("knapsack capacity must not be NaN")
    seen: set[int] = set()
    for item in items:
        if item.item_id in seen:
            raise OptimizerError(f"duplicate knapsack item id {item.item_id}")
        seen.add(item.item_id)


def _split_free_items(
    items: Sequence[KnapsackItem], capacity: float
) -> tuple[list[KnapsackItem], list[int], list[int]]:
    """Separate items into (contenders, always-in ids, never-in ids).

    Non-positive-weight items are free profit; items heavier than the
    capacity can never fit.
    """
    contenders: list[KnapsackItem] = []
    always_in: list[int] = []
    never_in: list[int] = []
    for item in items:
        if item.weight <= 0:
            always_in.append(item.item_id)
        elif item.weight > capacity:
            never_in.append(item.item_id)
        else:
            contenders.append(item)
    return contenders, always_in, never_in


# ----------------------------------------------------------------------
# Sparse DP core (flat arrays, dominance pruning, parent pointers)
# ----------------------------------------------------------------------
def _sparse_dp(
    weights: Sequence[float],
    profits: Sequence[int],
    capacity: float,
    stop_profit: float | None = None,
) -> list[int]:
    """Exact min-weight-per-profit DP over the Pareto state frontier.

    ``weights`` must all lie in ``(0, capacity]`` and ``profits`` must be
    positive integers — callers pre-filter free, oversize, and
    zero-profit items.  Returns the *positions* of the kept
    (maximum-profit feasible) set.

    The frontier is the list of non-dominated states — (profit, weight)
    pairs with no alternative of ≥ profit at ≤ weight — kept as parallel
    flat arrays ascending in both coordinates.  Each item pass merges the
    frontier with its item-extended copy (capacity-truncated) and prunes
    dominated states in one sweep.  Reconstruction follows per-state
    parent pointers into an append-only arena of (item, parent) records,
    so peak memory is proportional to states *created*, never ``n × P``.

    ``stop_profit`` stops the pass loop once the best feasible profit
    reaches it (the ε-approximation's early exit; exactness is only
    guaranteed without it).
    """
    fp: list[int] = [0]  # frontier profits, strictly ascending
    fw: list[float] = [0.0]  # frontier weights, strictly ascending
    fid: list[int] = [-1]  # arena id of each frontier state
    arena_item = array("q")
    arena_parent = array("q")

    for pos in range(len(weights)):
        w = weights[pos]
        p = profits[pos]
        # Extended states come from frontier states that still fit after
        # adding this item; fw ascends, so they form a prefix.  The
        # bisect over ``capacity - w`` can misplace the boundary by an
        # ulp in either direction; the true predicate ``fw[j] + w <=
        # capacity`` is monotone along the ascending weights (float
        # addition is order-preserving), so walk to its exact partition
        # point — a kept set landing exactly on the precision budget is
        # common with clean decimal widths and must stay feasible.
        cut = bisect_right(fw, capacity - w)
        while cut < len(fw) and fw[cut] + w <= capacity:
            cut += 1
        while cut > 0 and fw[cut - 1] + w > capacity:
            cut -= 1
        if cut == 0:
            continue
        n_f = len(fp)
        nfp: list[int] = []
        nfw: list[float] = []
        nfid: list[int] = []
        i = 0  # walks the existing frontier
        j = 0  # walks the extended prefix
        while i < n_f or j < cut:
            if j >= cut:
                use_ext = False
            elif i >= n_f:
                use_ext = True
            else:
                pe = fp[j] + p
                if fp[i] < pe:
                    use_ext = False
                elif fp[i] > pe:
                    use_ext = True
                elif fw[i] <= fw[j] + w:
                    use_ext = False  # same profit, existing is lighter
                    j += 1
                else:
                    use_ext = True  # same profit, extension is lighter
                    i += 1
            if use_ext:
                cp = fp[j] + p
                cw = fw[j] + w
                arena_item.append(pos)
                arena_parent.append(fid[j])
                cid = len(arena_item) - 1
                j += 1
            else:
                cp = fp[i]
                cw = fw[i]
                cid = fid[i]
                i += 1
            # Dominance prune: earlier (lower-profit) states at >= weight
            # are strictly worse than the incoming state.
            while nfw and nfw[-1] >= cw:
                nfp.pop()
                nfw.pop()
                nfid.pop()
            nfp.append(cp)
            nfw.append(cw)
            nfid.append(cid)
        fp, fw, fid = nfp, nfw, nfid
        if stop_profit is not None and fp[-1] >= stop_profit:
            break

    kept: list[int] = []
    state = fid[-1]  # every frontier state is feasible; last has max profit
    while state != -1:
        kept.append(arena_item[state])
        state = arena_parent[state]
    kept.reverse()
    return kept


def _ik_core(
    weights: Sequence[float],
    profits: Sequence[float],
    capacity: float,
    epsilon: float,
    early_exit: bool,
) -> list[int]:
    """Ibarra–Kim over parallel vectors; returns kept positions.

    Items must be contenders (``0 < w <= capacity``).  One profit-prefix
    pass over the density ordering yields the greedy profit ``P̂``, the
    greedy solution itself, and the fractional (Dantzig) upper bound.

    With ``early_exit`` the greedy solution is returned outright whenever
    it already certifies ``greedy ≥ (1 − ε) · frac_ub ≥ (1 − ε) · OPT`` —
    the density greedy is within one item's profit of the fractional
    bound, so at planner scale (OPT ≫ p_max) the DP is skipped entirely
    and selection is one sorted sweep.  Otherwise profits are floored to
    multiples of ``K = ε · P̂ / m̂``, where ``m̂`` bounds how many items
    any feasible solution holds (lightest-first prefix count), keeping
    the guarantee (an optimum uses ≤ m̂ items, so flooring loses ≤
    m̂ · K = ε · P̂ ≤ ε · OPT) while capping the DP frontier at
    ``OPT / K ≤ 2 m̂ / ε`` states.
    """
    n = len(weights)
    order = sorted(range(n), key=lambda k: (-(profits[k] / weights[k]), k))
    remaining = capacity
    greedy_profit = 0.0
    greedy_kept: list[int] = []
    frac_ub = 0.0
    frac_done = False
    p_max = 0.0
    for k in order:
        w = weights[k]
        p = profits[k]
        if p > p_max:
            p_max = p
        if w <= remaining:
            greedy_profit += p
            greedy_kept.append(k)
            remaining -= w
            if not frac_done:
                frac_ub += p
        elif not frac_done:
            frac_ub += p * (remaining / w)
            frac_done = True
    p_hat = max(p_max, greedy_profit)
    if p_hat <= 0:
        return []
    if early_exit and greedy_profit >= (1.0 - epsilon) * frac_ub:
        return greedy_kept  # profit-prefix certificate: greedy is (1−ε)-opt

    budget = capacity
    m_hat = 0
    for w in sorted(weights):
        if w > budget:
            break
        budget -= w
        m_hat += 1
    scale = epsilon * p_hat / max(1, m_hat)

    dp_pos: list[int] = []
    dp_w: list[float] = []
    dp_p: list[int] = []
    for k in order:
        scaled = int(profits[k] / scale)
        if scaled > 0:  # zero-profit (after flooring) items never help
            dp_pos.append(k)
            dp_w.append(weights[k])
            dp_p.append(scaled)
    if not dp_pos:
        return greedy_kept if greedy_profit > 0 else []
    stop = ((1.0 - epsilon) * frac_ub / scale) if early_exit else None
    kept = _sparse_dp(dp_w, dp_p, capacity, stop_profit=stop)
    best = [dp_pos[k] for k in kept]
    # The scaled DP can only see flooring-blurred profits; never return a
    # worse set than the greedy certificate pass already found.
    if sum(profits[k] for k in best) < greedy_profit:
        return greedy_kept
    return best


# ----------------------------------------------------------------------
# Exact dynamic program (profit dimension)
# ----------------------------------------------------------------------
def solve_exact_dp(
    items: Sequence[KnapsackItem],
    capacity: float,
    profit_of: Callable[[KnapsackItem], int] | None = None,
) -> KnapsackSolution:
    """Exact 0/1 knapsack via minimum-weight-per-profit DP.

    ``profit_of`` maps each item to an *integer* profit (defaults to
    ``round(item.profit)``, which is exact whenever profits are integral,
    as with the paper's integer refresh costs).  Real-valued weights are
    handled natively.  Runs over the sparse Pareto frontier —
    ``O(n · |frontier|)`` time and ``O(states)`` memory, never worse than
    the dense ``O(n · P)`` and dramatically better when few distinct
    profit sums are achievable.
    """
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)

    if profit_of is None:
        def profit_of(item: KnapsackItem) -> int:
            scaled = round(item.profit)
            if abs(scaled - item.profit) > 1e-9:
                raise OptimizerError(
                    f"solve_exact_dp requires integral profits; item "
                    f"{item.item_id} has profit {item.profit}. "
                    "Use solve_ibarra_kim for real-valued profits."
                )
            return scaled

    int_profits = [profit_of(item) for item in contenders]
    chosen: set[int] = set(always_in)
    # Zero-profit contenders never help; leave them out.
    dp_pos = [k for k, p in enumerate(int_profits) if p > 0]
    if dp_pos:
        dp_w = [contenders[k].weight for k in dp_pos]
        if sum(dp_w) <= capacity:  # everything fits — no DP needed
            chosen.update(contenders[k].item_id for k in dp_pos)
        else:
            kept = _sparse_dp(dp_w, [int_profits[k] for k in dp_pos], capacity)
            chosen.update(contenders[dp_pos[k]].item_id for k in kept)
    return KnapsackSolution.of(items, chosen)


# ----------------------------------------------------------------------
# Ibarra–Kim ε-approximation
# ----------------------------------------------------------------------
def solve_ibarra_kim(
    items: Sequence[KnapsackItem],
    capacity: float,
    epsilon: float,
    early_exit: bool = False,
) -> KnapsackSolution:
    """ε-approximate 0/1 knapsack by profit scaling (Ibarra & Kim, 1975).

    Profits are floored to multiples of ``K = ε · P̂ / n`` (``P̂`` the
    density-greedy profit, so ``P̂ ≤ OPT ≤ 2 P̂``) and the sparse exact DP
    runs on the scaled instance: kept profit ≥ OPT − n·K ≥ (1 − ε) · OPT,
    while capacity pruning bounds the frontier at ``OPT/K ≤ 2n/ε`` states
    — the ε/time knob the paper's Figure 5 plots.  ``early_exit`` stops
    the DP at ``(1 − ε)`` of the fractional upper bound (guarantee
    preserved); the planner's vector path enables it.
    """
    if not 0 < epsilon < 1:
        raise OptimizerError(f"epsilon must lie in (0, 1), got {epsilon}")
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)
    if not contenders:
        return KnapsackSolution.of(items, always_in)

    weights = [item.weight for item in contenders]
    if sum(weights) <= capacity:  # everything fits
        chosen = set(always_in)
        chosen.update(item.item_id for item in contenders)
        return KnapsackSolution.of(items, chosen)

    profits = [item.profit for item in contenders]
    kept = _ik_core(weights, profits, capacity, epsilon, early_exit)
    chosen = set(always_in)
    chosen.update(contenders[k].item_id for k in kept)
    return KnapsackSolution.of(items, chosen)


# ----------------------------------------------------------------------
# Vector-native planner API
# ----------------------------------------------------------------------
def solve_vector(
    weights: Sequence[float],
    profits: Sequence[float],
    capacity: float,
    *,
    epsilon: float | None = None,
    force_exact: bool = False,
    force_approx: bool = False,
    order: Sequence[int] | None = None,
    integral: bool | None = None,
    profit_total: float | None = None,
    exact_profit_limit: int = 100_000,
) -> VectorSolution:
    """Plan a refresh directly from parallel candidate vectors.

    ``weights`` and ``profits`` are parallel sequences (stdlib ``array``
    from :func:`repro.storage.columnar.harvest_candidates`, NumPy arrays,
    or plain lists); position ``k`` describes one candidate tuple.  The
    result lists the positions *not* kept — the refresh plan — because
    that complement is what CHOOSE_REFRESH materializes.

    Solver selection mirrors the SUM optimizer: uniform profits take the
    ascending-weight greedy (walking ``order`` — positions pre-sorted by
    (weight, position) from a planner cache — instead of sorting);
    integral profits below ``exact_profit_limit`` (or ``force_exact``,
    which — like :func:`solve_exact_dp` — rejects non-integral profits)
    take the sparse exact DP; anything else takes Ibarra–Kim with the
    profit-prefix early exit enabled.  ``integral`` and ``profit_total``
    (any upper bound on the integral profit sum) short-circuit the
    per-call scans when the harvester already knows them.
    """
    if math.isnan(capacity):
        raise OptimizerError("knapsack capacity must not be NaN")
    if force_exact and force_approx:
        raise OptimizerError("force_exact and force_approx are mutually exclusive")
    n = len(weights)
    kept: list[int] = []
    refresh: list[int] = []
    contend: list[int] = []
    total_w = 0.0
    p_min = math.inf
    p_max = -math.inf
    for k in range(n):
        w = weights[k]
        p = profits[k]
        if w != w or p != p:
            raise OptimizerError("knapsack weight/profit must not be NaN")
        if p < 0:
            raise OptimizerError(
                f"negative profit {p} at position {k}; refresh costs must "
                "be non-negative"
            )
        if w <= 0:
            kept.append(k)
        elif w > capacity:
            refresh.append(k)
        else:
            contend.append(k)
            total_w += w
            if p < p_min:
                p_min = p
            if p > p_max:
                p_max = p

    if contend and total_w <= capacity and not force_approx:
        kept.extend(contend)
    elif contend:
        if not force_approx and p_min == p_max:
            kept_c, refresh_c = _greedy_uniform_positions(
                weights, capacity, contend, order
            )
            kept.extend(kept_c)
            refresh.extend(refresh_c)
        else:
            if integral is None:
                integral = all(
                    abs(profits[k] - round(profits[k])) <= 1e-9 for k in contend
                )
            if force_exact and not integral:
                raise OptimizerError(
                    "solve_vector(force_exact=True) requires integral profits; "
                    "use the epsilon path for real-valued refresh costs"
                )
            if not integral:
                total_p = 0
            elif profit_total is not None:
                total_p = profit_total
            else:
                total_p = sum(int(round(profits[k])) for k in contend)
            if not force_approx and (
                force_exact or (integral and total_p <= exact_profit_limit)
            ):
                dp = [k for k in contend if round(profits[k]) > 0]
                dp_kept = _sparse_dp(
                    [weights[k] for k in dp],
                    [int(round(profits[k])) for k in dp],
                    capacity,
                )
                kept_set = {dp[k] for k in dp_kept}
            else:
                eps = epsilon if epsilon is not None else _FALLBACK_EPSILON
                if not 0 < eps < 1:
                    raise OptimizerError(f"epsilon must lie in (0, 1), got {eps}")
                ik_kept = _ik_core(
                    [weights[k] for k in contend],
                    [profits[k] for k in contend],
                    capacity,
                    eps,
                    early_exit=True,
                )
                kept_set = {contend[k] for k in ik_kept}
            for k in contend:
                (kept if k in kept_set else refresh).append(k)

    refresh_profit = 0.0
    for k in refresh:
        refresh_profit += profits[k]
    kept_profit = 0.0
    kept_weight = 0.0
    for k in kept:
        kept_profit += profits[k]
        kept_weight += weights[k]
    return VectorSolution(
        refresh=tuple(refresh),
        refresh_profit=refresh_profit,
        kept_profit=kept_profit,
        kept_weight=kept_weight,
    )


def _greedy_uniform_positions(
    weights: Sequence[float],
    capacity: float,
    contend: list[int],
    order: Sequence[int] | None,
) -> tuple[list[int], list[int]]:
    """Ascending-weight greedy over contender positions.

    With ``order`` (all positions, ascending by (weight, position)) no
    sort happens; weights ascend, so once one contender misses the
    remaining budget none after it can fit.
    """
    kept: list[int] = []
    refresh: list[int] = []
    if order is not None:
        remaining = capacity
        for k in order:
            w = weights[k]
            if w <= 0 or w > capacity:
                continue  # free / oversize: already routed by the caller
            if w <= remaining:
                kept.append(k)
                remaining -= w
            else:
                refresh.append(k)
        return kept, refresh
    remaining = capacity
    for k in sorted(contend, key=lambda k: (weights[k], k)):
        if weights[k] <= remaining:
            kept.append(k)
            remaining -= weights[k]
        else:
            refresh.append(k)
    return kept, refresh


# ----------------------------------------------------------------------
# Greedy variants
# ----------------------------------------------------------------------
def solve_greedy_uniform(
    items: Sequence[KnapsackItem],
    capacity: float,
    sorted_widths: Iterable[tuple[float, int]] | Iterator[tuple[float, int]] | None = None,
) -> KnapsackSolution:
    """Ascending-weight greedy; optimal when all profits are equal (§5.2).

    Placing the lightest items first maximizes the *number* of items kept,
    which maximizes total profit under uniform profits.  ``O(n log n)``
    standalone; pass ``sorted_widths`` — ``(weight, item_id)`` pairs in
    ascending weight order, e.g. the ``<column>__width`` index's
    :meth:`~repro.storage.index.SortedIndex.ascending` from
    :meth:`repro.storage.table.Table.create_endpoint_indexes` — to skip
    the per-call sort and stop scanning at the first key past the
    remaining budget.  Ids absent from ``items`` are ignored, so one
    whole-table index serves any candidate subset.
    """
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)
    chosen = set(always_in)
    remaining = capacity
    if sorted_widths is not None:
        weight_of = {item.item_id: item.weight for item in contenders}
        for key, tid in sorted_widths:
            weight = weight_of.get(tid)
            if weight is None:
                continue
            if weight <= remaining:
                chosen.add(tid)
                remaining -= weight
            elif key > remaining:
                break  # ascending keys: nothing later fits either
        return KnapsackSolution.of(items, chosen)
    for item in sorted(contenders, key=lambda i: (i.weight, i.item_id)):
        if item.weight <= remaining:
            chosen.add(item.item_id)
            remaining -= item.weight
    return KnapsackSolution.of(items, chosen)


def solve_greedy_ratio(
    items: Sequence[KnapsackItem], capacity: float
) -> KnapsackSolution:
    """Classic profit/weight-density greedy with the best-single fallback.

    Guarantees at least half the optimal profit; included as an ablation
    baseline against the Ibarra–Kim scheme (not used by the paper).
    """
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)
    chosen = set(always_in)
    remaining = capacity
    greedy_profit = 0.0
    for item in sorted(
        contenders, key=lambda i: (-(i.profit / i.weight), i.item_id)
    ):
        if item.weight <= remaining:
            chosen.add(item.item_id)
            remaining -= item.weight
            greedy_profit += item.profit
    # The 2-approximation requires comparing with the single best item.
    best_single = max(contenders, key=lambda i: i.profit, default=None)
    if best_single is not None and best_single.profit > greedy_profit:
        chosen = set(always_in) | {best_single.item_id}
    return KnapsackSolution.of(items, chosen)


# ----------------------------------------------------------------------
# Brute force (test oracle)
# ----------------------------------------------------------------------
def solve_brute_force(
    items: Sequence[KnapsackItem], capacity: float
) -> KnapsackSolution:
    """Exhaustive search over all subsets; the optimality oracle for tests.

    Exponential — callers must keep instances small (≤ ~20 contenders).
    """
    _validate(items, capacity)
    contenders, always_in, _ = _split_free_items(items, capacity)
    if len(contenders) > 22:
        raise OptimizerError(
            f"brute force limited to 22 contenders, got {len(contenders)}"
        )
    best_ids: tuple[int, ...] = ()
    best_profit = -1.0
    for r in range(len(contenders) + 1):
        for combo in combinations(contenders, r):
            weight = sum(i.weight for i in combo)
            if weight > capacity:
                continue
            profit = sum(i.profit for i in combo)
            if profit > best_profit:
                best_profit = profit
                best_ids = tuple(i.item_id for i in combo)
    return KnapsackSolution.of(items, set(best_ids) | set(always_in))
