"""Common protocol for bounded aggregate evaluators.

Each of the five standard aggregates (MIN, MAX, SUM, COUNT, AVG) provides:

* :meth:`AggregateSpec.bound_without_predicate` — paper §5: the bounded
  answer when every tuple of the table contributes (any selection predicate
  involved only exact columns and has already been applied);
* :meth:`AggregateSpec.bound_with_classification` — paper §6: the bounded
  answer given the T+/T?/T− partition induced by a predicate over bounded
  columns.

Evaluators are pure functions of the rows' current interval values; exact
(already-refreshed) values participate as zero-width intervals, so a single
code path covers cached, partially refreshed, and fully refreshed tables.

The five standard aggregates additionally implement *columnar* fast paths
(``bound_without_predicate_columnar`` over a table's lo/hi arrays, and
``bound_with_classification_columnar`` over a
:class:`~repro.predicates.batch.ColumnarClassification`).  These are
optional: the executor probes for them with ``hasattr`` and falls back to
the row loops, so extension aggregates (e.g. MEDIAN) need not provide
them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.bound import Bound
from repro.errors import TrappError
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = ["AggregateSpec", "registry", "get_aggregate"]


class AggregateSpec(Protocol):
    """The interface every bounded aggregate evaluator implements."""

    #: SQL name: "MIN", "MAX", "SUM", "COUNT", or "AVG".
    name: str
    #: Whether the aggregate takes a column argument (COUNT does not).
    needs_column: bool

    def bound_without_predicate(
        self, rows: Sequence[Row], column: str | None
    ) -> Bound:
        """Bounded answer over all rows (no bounded-column predicate)."""
        ...

    def bound_with_classification(
        self, classification: Classification, column: str | None
    ) -> Bound:
        """Bounded answer given a T+/T?/T− partition."""
        ...


registry: dict[str, AggregateSpec] = {}


def register(spec: AggregateSpec) -> AggregateSpec:
    """Add an evaluator to the global registry (module import side effect)."""
    registry[spec.name] = spec
    return spec


def get_aggregate(name: str) -> AggregateSpec:
    """Look up an evaluator by SQL name (case-insensitive)."""
    try:
        return registry[name.upper()]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise TrappError(f"unknown aggregate {name!r}; known: {known}") from None
