"""Bounded AVG evaluators (paper §5.4, §6.4.1, Appendix E).

Without a predicate the cardinality is exact, so AVG is just the bounded
SUM divided by COUNT.

With a predicate both SUM and COUNT are bounded, and two evaluators exist:

* the **tight** ``O(n log n)`` bound of Appendix E — start from the T+
  endpoint averages and greedily average in T? endpoints while doing so
  moves the respective extreme outward;
* the **loose** linear-time bound of §6.4.1 — combine the SUM and COUNT
  intervals via the four endpoint quotients.  The loose bound is what the
  AVG CHOOSE_REFRESH optimizer (Appendix F) can guarantee against.

Both are exposed: :class:`AvgAggregate` (the registry entry) uses the tight
bound for answers; :func:`loose_avg_bound` backs the optimizer and the
tests that demonstrate tight ⊆ loose.
"""

from __future__ import annotations

import math
from typing import Sequence

try:  # Columnar fast paths need numpy; the executor skips them without.
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less hosts
    np = None  # type: ignore[assignment]

from repro.core.aggregates.base import register
from repro.core.aggregates.counting import COUNT
from repro.core.aggregates.summing import SUM
from repro.core.bound import Bound
from repro.errors import TrappError
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = ["AvgAggregate", "AVG", "tight_avg_bound", "loose_avg_bound"]


def tight_avg_bound(classification: Classification, column: str) -> Bound:
    """The Appendix E exact bound for AVG under a predicate.

    Lower endpoint: average the T+ lower endpoints, then sweep the T? lower
    endpoints in increasing order, averaging each in while it decreases the
    running average.  The upper endpoint is symmetric with decreasing upper
    endpoints.  Empty T+ ∪ T? yields the empty-average convention
    ``[+inf, -inf]`` clipped to an unbounded interval, matching "no tuple
    may satisfy the predicate" (the answer set could be empty, so no finite
    guarantee exists); we return the full line in that case.
    """
    plus = classification.plus
    maybe = classification.maybe
    if not plus and not maybe:
        # No tuple can satisfy the predicate: the precise AVG is undefined.
        # We adopt the convention of an exact empty marker at NaN-free
        # extremes: the unbounded interval.
        return Bound.unbounded()

    if not plus and maybe:
        # The answer set may be empty (undefined AVG) or contain any mix of
        # T? tuples; every individual value is a possible average, so the
        # hull of the T? bounds is the tight answer.
        lo = min(row.bound(column).lo for row in maybe)
        hi = max(row.bound(column).hi for row in maybe)
        return Bound(lo, hi)

    # Lower endpoint sweep.
    s_l = sum(row.bound(column).lo for row in plus)
    k_l = len(plus)
    for lo in sorted(row.bound(column).lo for row in maybe):
        if lo < s_l / k_l:
            s_l += lo
            k_l += 1
        else:
            break

    # Upper endpoint sweep (mirror image).
    s_h = sum(row.bound(column).hi for row in plus)
    k_h = len(plus)
    for hi in sorted((row.bound(column).hi for row in maybe), reverse=True):
        if hi > s_h / k_h:
            s_h += hi
            k_h += 1
        else:
            break

    return Bound(s_l / k_l, s_h / k_h)


def loose_avg_bound(sum_bound: Bound, count_bound: Bound) -> Bound:
    """The §6.4.1 linear-time bound from SUM and COUNT intervals.

    ``[min(L_S/H_C, L_S/L_C), max(H_S/L_C, H_S/H_C)]``.  ``L_C`` may be
    zero (the answer set could be empty); since COUNT is integral, the
    smallest *nonempty* realization has count 1, so quotients use
    ``max(L_C, 1)`` — the average over an empty set is undefined rather
    than unbounded, and every nonempty realization is covered.
    """
    l_s, h_s = sum_bound.lo, sum_bound.hi
    l_c, h_c = count_bound.lo, count_bound.hi
    if h_c <= 0:
        # No tuple can satisfy the predicate; AVG is undefined.
        return Bound.unbounded()
    min_count = max(l_c, 1.0)

    lo = min(l_s / h_c, l_s / min_count)
    hi = max(h_s / h_c, h_s / min_count)
    return Bound(min(lo, hi), max(lo, hi))


class AvgAggregate:
    """Bounded AVG; tight Appendix E evaluation under predicates."""

    name = "AVG"
    needs_column = True

    def bound_without_predicate(
        self, rows: Sequence[Row], column: str | None
    ) -> Bound:
        if column is None:
            raise TrappError("AVG requires an aggregation column")
        if not rows:
            return Bound.unbounded()
        total = SUM.bound_without_predicate(rows, column)
        count = len(rows)
        return Bound(total.lo / count, total.hi / count)

    def bound_with_classification(
        self, classification: Classification, column: str | None
    ) -> Bound:
        if column is None:
            raise TrappError("AVG requires an aggregation column")
        return tight_avg_bound(classification, column)

    # -- columnar fast paths -------------------------------------------
    def bound_without_predicate_columnar(self, store, column: str | None) -> Bound:
        if column is None:
            raise TrappError("AVG requires an aggregation column")
        n = len(store)
        if n == 0:
            return Bound.unbounded()
        lo, hi = store.endpoints(column)
        return Bound(float(lo.sum()) / n, float(hi.sum()) / n)

    def bound_with_classification_columnar(self, cc, column: str | None) -> Bound:
        """Appendix E tight bound over endpoint arrays.

        The sums and sorts are vectorized; the greedy endpoint sweeps stay
        scalar loops because they typically terminate after a handful of
        T? tuples.
        """
        if column is None:
            raise TrappError("AVG requires an aggregation column")
        if cc.n_plus == 0 and cc.n_maybe == 0:
            return Bound.unbounded()
        if cc.n_plus == 0:
            return Bound(float(cc.maybe_lo.min()), float(cc.maybe_hi.max()))

        s_l = float(cc.plus_lo.sum())
        k_l = cc.n_plus
        for lo in np.sort(cc.maybe_lo):
            if lo < s_l / k_l:
                s_l += float(lo)
                k_l += 1
            else:
                break

        s_h = float(cc.plus_hi.sum())
        k_h = cc.n_plus
        for hi in np.sort(cc.maybe_hi)[::-1]:
            if hi > s_h / k_h:
                s_h += float(hi)
                k_h += 1
            else:
                break

        return Bound(s_l / k_l, s_h / k_h)


AVG = register(AvgAggregate())
