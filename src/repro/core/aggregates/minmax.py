"""Bounded MIN and MAX evaluators (paper §5.1, §6.1, Appendix C).

Without a predicate::

    MIN: [ min_i L_i , min_i H_i ]        MAX: [ max_i L_i , max_i H_i ]

With a predicate, a ``T?`` tuple might or might not contribute, so the two
endpoints range over different tuple sets::

    MIN: [ min_{T+ ∪ T?} L_i , min_{T+} H_i ]
    MAX: [ max_{T+} L_i      , max_{T+ ∪ T?} H_i ]

Empty tuple sets follow the paper's convention ``min ∅ = +inf`` and
``max ∅ = -inf``, so e.g. a MIN over an empty T+ has upper endpoint +inf
(nothing is guaranteed to be in the result set, so no finite upper bound on
the minimum exists).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.aggregates.base import register
from repro.core.bound import Bound
from repro.errors import TrappError
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = ["MinAggregate", "MaxAggregate", "MIN", "MAX"]


def _require_column(name: str, column: str | None) -> str:
    if column is None:
        raise TrappError(f"{name} requires an aggregation column")
    return column


class MinAggregate:
    """Bounded MIN."""

    name = "MIN"
    needs_column = True

    def bound_without_predicate(
        self, rows: Sequence[Row], column: str | None
    ) -> Bound:
        column = _require_column(self.name, column)
        lo = min((row.bound(column).lo for row in rows), default=math.inf)
        hi = min((row.bound(column).hi for row in rows), default=math.inf)
        return Bound(lo, hi)

    def bound_with_classification(
        self, classification: Classification, column: str | None
    ) -> Bound:
        column = _require_column(self.name, column)
        lo = min(
            (row.bound(column).lo for row in classification.plus_or_maybe),
            default=math.inf,
        )
        hi = min(
            (row.bound(column).hi for row in classification.plus),
            default=math.inf,
        )
        # An empty T+ leaves the upper endpoint unbounded (+inf) while T?
        # tuples may still pull the lower endpoint down; lo <= hi holds
        # because each T+ row contributes to both minima.
        return Bound(lo, hi)

    # -- columnar fast paths -------------------------------------------
    def bound_without_predicate_columnar(self, store, column: str | None) -> Bound:
        column = _require_column(self.name, column)
        lo, hi = store.endpoints(column)
        return Bound(_min_of(lo), _min_of(hi))

    def bound_with_classification_columnar(
        self, cc, column: str | None
    ) -> Bound:
        _require_column(self.name, column)
        return Bound(
            min(_min_of(cc.plus_lo), _min_of(cc.maybe_lo)),
            _min_of(cc.plus_hi),
        )


class MaxAggregate:
    """Bounded MAX (symmetric to MIN, Appendix C)."""

    name = "MAX"
    needs_column = True

    def bound_without_predicate(
        self, rows: Sequence[Row], column: str | None
    ) -> Bound:
        column = _require_column(self.name, column)
        lo = max((row.bound(column).lo for row in rows), default=-math.inf)
        hi = max((row.bound(column).hi for row in rows), default=-math.inf)
        return Bound(lo, hi)

    def bound_with_classification(
        self, classification: Classification, column: str | None
    ) -> Bound:
        column = _require_column(self.name, column)
        lo = max(
            (row.bound(column).lo for row in classification.plus),
            default=-math.inf,
        )
        hi = max(
            (row.bound(column).hi for row in classification.plus_or_maybe),
            default=-math.inf,
        )
        return Bound(lo, hi)

    # -- columnar fast paths -------------------------------------------
    def bound_without_predicate_columnar(self, store, column: str | None) -> Bound:
        column = _require_column(self.name, column)
        lo, hi = store.endpoints(column)
        return Bound(_max_of(lo), _max_of(hi))

    def bound_with_classification_columnar(
        self, cc, column: str | None
    ) -> Bound:
        _require_column(self.name, column)
        return Bound(
            _max_of(cc.plus_lo),
            max(_max_of(cc.plus_hi), _max_of(cc.maybe_hi)),
        )


def _min_of(values) -> float:
    """``min`` with the paper's empty-set convention ``min ∅ = +inf``."""
    return float(values.min()) if values.size else math.inf


def _max_of(values) -> float:
    """``max`` with the paper's empty-set convention ``max ∅ = -inf``."""
    return float(values.max()) if values.size else -math.inf


MIN = register(MinAggregate())
MAX = register(MaxAggregate())
