"""Bounded aggregate evaluators for the five standard SQL aggregates.

Importing this package populates the registry in
:mod:`repro.core.aggregates.base`, so ``get_aggregate("SUM")`` etc. work
immediately.
"""

from repro.core.aggregates.base import AggregateSpec, get_aggregate, registry
from repro.core.aggregates.minmax import MAX, MIN, MaxAggregate, MinAggregate
from repro.core.aggregates.summing import SUM, SumAggregate
from repro.core.aggregates.counting import COUNT, CountAggregate
from repro.core.aggregates.average import (
    AVG,
    AvgAggregate,
    loose_avg_bound,
    tight_avg_bound,
)

__all__ = [
    "AggregateSpec",
    "get_aggregate",
    "registry",
    "MIN",
    "MAX",
    "SUM",
    "COUNT",
    "AVG",
    "MinAggregate",
    "MaxAggregate",
    "SumAggregate",
    "CountAggregate",
    "AvgAggregate",
    "tight_avg_bound",
    "loose_avg_bound",
]
