"""Bounded COUNT evaluator (paper §5.3 and §6.3).

Without a predicate, COUNT is the cached table's cardinality: the
architecture propagates insertions and deletions to caches immediately
(§3), so the cached cardinality always equals the master cardinality and
the answer is exact.

With a predicate, every T+ tuple certainly counts and every T? tuple might::

    COUNT: [ |T+| , |T+| + |T?| ]
"""

from __future__ import annotations

from typing import Sequence

from repro.core.aggregates.base import register
from repro.core.bound import Bound
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = ["CountAggregate", "COUNT"]


class CountAggregate:
    """Bounded COUNT (``COUNT(*)``; no aggregation column)."""

    name = "COUNT"
    needs_column = False

    def bound_without_predicate(
        self, rows: Sequence[Row], column: str | None
    ) -> Bound:
        return Bound.exact(len(rows))

    def bound_with_classification(
        self, classification: Classification, column: str | None
    ) -> Bound:
        plus = len(classification.plus)
        maybe = len(classification.maybe)
        return Bound(plus, plus + maybe)

    # -- columnar fast paths -------------------------------------------
    def bound_without_predicate_columnar(self, store, column: str | None) -> Bound:
        return Bound.exact(len(store))

    def bound_with_classification_columnar(self, cc, column: str | None) -> Bound:
        return Bound(cc.n_plus, cc.n_plus + cc.n_maybe)


COUNT = register(CountAggregate())
