"""Bounded SUM evaluator (paper §5.2 and §6.2).

Without a predicate, the extremes of a sum occur when every value sits at
the same end of its bound::

    SUM: [ Σ_i L_i , Σ_i H_i ]

With a predicate, a ``T?`` tuple might turn out not to satisfy it and
contribute nothing, so only *negative* lower endpoints can drag the lower
extreme down, and only *positive* upper endpoints can push the upper
extreme up::

    SUM: [ Σ_{T+} L_i + Σ_{T? ∧ L_i < 0} L_i ,
           Σ_{T+} H_i + Σ_{T? ∧ H_i > 0} H_i ]

Equivalently, each T? bound is first extended to include zero
(:meth:`repro.core.bound.Bound.extend_to_zero`).
"""

from __future__ import annotations

from typing import Sequence

try:  # Columnar fast paths need numpy; the executor skips them without.
    import numpy as np
    from repro.predicates.batch import ColumnarClassification
except ImportError:  # pragma: no cover - numpy-less hosts
    np = None  # type: ignore[assignment]

from repro.core.aggregates.base import register
from repro.core.bound import Bound
from repro.errors import TrappError
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = ["SumAggregate", "SUM"]


class SumAggregate:
    """Bounded SUM."""

    name = "SUM"
    needs_column = True

    def bound_without_predicate(
        self, rows: Sequence[Row], column: str | None
    ) -> Bound:
        if column is None:
            raise TrappError("SUM requires an aggregation column")
        lo = 0.0
        hi = 0.0
        for row in rows:
            b = row.bound(column)
            lo += b.lo
            hi += b.hi
        return Bound(lo, hi)

    def bound_with_classification(
        self, classification: Classification, column: str | None
    ) -> Bound:
        if column is None:
            raise TrappError("SUM requires an aggregation column")
        lo = 0.0
        hi = 0.0
        for row in classification.plus:
            b = row.bound(column)
            lo += b.lo
            hi += b.hi
        for row in classification.maybe:
            b = row.bound(column).extend_to_zero()
            lo += b.lo
            hi += b.hi
        return Bound(lo, hi)

    # -- columnar fast paths -------------------------------------------
    def bound_without_predicate_columnar(self, store, column: str | None) -> Bound:
        if column is None:
            raise TrappError("SUM requires an aggregation column")
        lo, hi = store.endpoints(column)
        return Bound(float(lo.sum()), float(hi.sum()))

    def bound_with_classification_columnar(
        self, cc: ColumnarClassification, column: str | None
    ) -> Bound:
        if column is None:
            raise TrappError("SUM requires an aggregation column")
        lo = cc.plus_lo.sum() + np.minimum(cc.maybe_lo, 0.0).sum()
        hi = cc.plus_hi.sum() + np.maximum(cc.maybe_hi, 0.0).sum()
        return Bound(float(lo), float(hi))


SUM = register(SumAggregate())
