"""Bounded answers returned by TRAPP/AG queries.

A *bounded answer* is a pair ``[L_A, H_A]`` guaranteed to contain the
precise answer (paper §1.3).  :class:`BoundedAnswer` wraps the interval
with the execution metadata a caller of the three-step executor wants:
which tuples were refreshed, what the refresh cost was, and whether the
precision constraint was met.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bound import Bound
from repro.core.constraints import width_within

__all__ = ["BoundedAnswer"]


@dataclass(frozen=True, slots=True)
class BoundedAnswer:
    """The result of executing a TRAPP/AG aggregation query."""

    #: The guaranteed interval containing the precise answer.
    bound: Bound
    #: Tuple ids refreshed from sources while answering (empty when the
    #: cached bounds alone met the constraint).
    refreshed: frozenset[int] = frozenset()
    #: Total cost of those refreshes under the query's cost model.
    refresh_cost: float = 0.0
    #: The answer computed from cached data alone (step 1 of execution),
    #: useful for judging how much the refreshes tightened the answer.
    initial_bound: Bound | None = None
    #: True when a planned refresh ultimately failed and the answer was
    #: served from the current (wider than requested, but still correct)
    #: bounds.  The interval is still guaranteed to contain the precise
    #: answer — only the precision constraint was sacrificed.
    degraded: bool = False
    #: Sources that could not be contacted while answering (empty unless
    #: some planned tuples went unrefreshed).
    unreachable_sources: tuple[str, ...] = ()
    #: Fraction of (tuple, predicate-leaf) decisions step 1 had to
    #: materialize from endpoint-index windows, ``None`` when the dense
    #: classifier ran (index-ineligible predicate, or the row path).
    #: ``0.0`` means every tuple was decided wholesale by binary search.
    index_window_fraction: float | None = None

    @property
    def width(self) -> float:
        """The answer's imprecision ``H_A - L_A``."""
        return self.bound.width

    @property
    def is_exact(self) -> bool:
        return self.bound.is_exact

    @property
    def value(self) -> float:
        """The exact answer, when the bound has collapsed to a point."""
        if not self.bound.is_exact:
            raise ValueError(
                f"answer {self.bound} is not exact; read .bound instead"
            )
        return self.bound.lo

    def meets(self, max_width: float) -> bool:
        """True iff the answer satisfies ``H_A - L_A <= max_width``.

        Uses the same :func:`~repro.core.constraints.width_within` slack
        as the executor, so an answer the executor certified never
        reports itself as violating its own constraint.
        """
        return width_within(self.width, max_width)

    def __str__(self) -> str:
        parts = [str(self.bound)]
        if self.refreshed:
            parts.append(
                f"(refreshed {len(self.refreshed)} tuples, cost {self.refresh_cost:g})"
            )
        if self.degraded:
            parts.append(
                f"(degraded: {', '.join(self.unreachable_sources) or 'sources unreachable'})"
            )
        return " ".join(parts)
