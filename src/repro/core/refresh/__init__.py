"""CHOOSE_REFRESH optimizers, one per aggregate.

:func:`get_choose_refresh` dispatches on the SQL aggregate name.  SUM and
AVG accept an ``epsilon`` for their knapsack approximation (paper default
0.1); MIN/MAX/COUNT optimizers are exactly optimal and parameter-free.
"""

from repro.core.refresh.base import (
    ChooseRefresh,
    CostFunc,
    RefreshPlan,
    cost_from_column,
    uniform_cost,
)
from repro.core.refresh.minmax import (
    CHOOSE_MAX,
    CHOOSE_MIN,
    MaxChooseRefresh,
    MinChooseRefresh,
)
from repro.core.refresh.summing import CHOOSE_SUM, DEFAULT_EPSILON, SumChooseRefresh
from repro.core.refresh.counting import CHOOSE_COUNT, CountChooseRefresh
from repro.core.refresh.average import CHOOSE_AVG, AvgChooseRefresh
from repro.errors import TrappError

__all__ = [
    "ChooseRefresh",
    "CostFunc",
    "RefreshPlan",
    "uniform_cost",
    "cost_from_column",
    "get_choose_refresh",
    "register_choose_refresh",
    "DEFAULT_EPSILON",
    "MinChooseRefresh",
    "MaxChooseRefresh",
    "SumChooseRefresh",
    "CountChooseRefresh",
    "AvgChooseRefresh",
    "CHOOSE_MIN",
    "CHOOSE_MAX",
    "CHOOSE_SUM",
    "CHOOSE_COUNT",
    "CHOOSE_AVG",
]

_DEFAULTS: dict[str, ChooseRefresh] = {
    "MIN": CHOOSE_MIN,
    "MAX": CHOOSE_MAX,
    "SUM": CHOOSE_SUM,
    "COUNT": CHOOSE_COUNT,
    "AVG": CHOOSE_AVG,
}


def register_choose_refresh(name: str, chooser: ChooseRefresh) -> ChooseRefresh:
    """Register an optimizer for an extension aggregate (e.g. MEDIAN)."""
    _DEFAULTS[name.upper()] = chooser
    return chooser


def get_choose_refresh(
    name: str, epsilon: float | None = None, force_exact: bool = False
) -> ChooseRefresh:
    """Return the CHOOSE_REFRESH optimizer for an aggregate by SQL name."""
    key = name.upper()
    if key not in _DEFAULTS:
        known = ", ".join(sorted(_DEFAULTS))
        raise TrappError(f"unknown aggregate {name!r}; known: {known}")
    if key == "SUM" and (epsilon is not None or force_exact):
        return SumChooseRefresh(
            epsilon=epsilon or DEFAULT_EPSILON, force_exact=force_exact
        )
    if key == "AVG" and (epsilon is not None or force_exact):
        return AvgChooseRefresh(
            epsilon=epsilon or DEFAULT_EPSILON, force_exact=force_exact
        )
    return _DEFAULTS[key]
