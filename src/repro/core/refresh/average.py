"""CHOOSE_REFRESH for AVG (paper §5.4, §6.4.2, Appendix F).

Without a predicate, COUNT is exact, so a precision constraint ``R`` on
AVG reduces to the constraint ``R * COUNT`` on SUM; we delegate to the SUM
optimizer with the scaled budget.

With a predicate, Appendix F reduces the problem to a single knapsack that
simultaneously accounts for SUM and COUNT uncertainty.  Writing
``[L'_S, H'_S]`` and ``[L'_C, H'_C]`` for the SUM/COUNT bounds computed
over the *current* cached data, the derivation yields a knapsack with

* capacity ``M = L'_C * R``, and
* item weights equal to the SUM weights (§6.2), plus — for T? tuples only —
  the slope penalty ``max(H'_S, -L'_S, H'_S - L'_S) / L'_C - R``,

because every T? tuple kept in the knapsack also widens the COUNT bound by
one, shrinking the effective SUM budget by the slope.  Tuples left out of
the knapsack are refreshed.  The structure (and hence complexity) is the
same as the SUM optimizer's.

Degenerate case: when ``L'_C = 0`` the derivation divides by zero — no
nonempty answer set is guaranteed, and the loose AVG bound cannot be made
finite without establishing one.  We then refresh *all* T? tuples (making
COUNT exact) and fall back to the no-predicate reduction on what remains;
this is sound, if not always minimal, and the situation cannot arise in
the paper's examples (T+ is nonempty whenever the constraint is finite).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.aggregates.counting import COUNT
from repro.core.aggregates.summing import SUM
from repro.core.bound import Bound
from repro.core.knapsack import (
    KnapsackItem,
    solve_exact_dp,
    solve_greedy_uniform,
    solve_ibarra_kim,
)
from repro.core.refresh.base import CostFunc, RefreshPlan, uniform_cost
from repro.core.refresh.summing import DEFAULT_EPSILON, SumChooseRefresh
from repro.errors import TrappError
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = ["AvgChooseRefresh", "CHOOSE_AVG"]


class AvgChooseRefresh:
    """Knapsack-based refresh selection for bounded AVG queries."""

    name = "AVG"
    #: Positions-only capable (see SumChooseRefresh.uses_positions).
    uses_positions = True

    def __init__(self, epsilon: float = DEFAULT_EPSILON, force_exact: bool = False):
        self.epsilon = epsilon
        self.force_exact = force_exact
        self._sum = SumChooseRefresh(epsilon=epsilon, force_exact=force_exact)

    # ------------------------------------------------------------------
    def without_predicate(
        self,
        rows: Sequence[Row],
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        if column is None:
            raise TrappError("AVG CHOOSE_REFRESH requires an aggregation column")
        count = len(rows)
        if count == 0:
            return RefreshPlan.empty()
        # AVG width = SUM width / COUNT, so budget SUM at R * COUNT (§5.4).
        return self._sum.without_predicate(rows, column, max_width * count, cost)

    def without_predicate_columnar(
        self,
        store,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ):
        """Vector counterpart of the §5.4 reduction to SUM."""
        if column is None:
            raise TrappError("AVG CHOOSE_REFRESH requires an aggregation column")
        count = len(store)
        if count == 0:
            return RefreshPlan.empty(), None
        return self._sum.without_predicate_columnar(
            store, column, max_width * count, cost
        )

    def with_classification_columnar(
        self,
        store,
        certain,
        possible,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
        predicate=None,
        positions=None,
    ):
        """Vector counterpart of the Appendix F knapsack.

        Harvests SUM's §6.2 candidate vectors straight from the columnar
        mirror, then augments every T? weight with the slope penalty and
        solves at capacity ``L'_C · R`` through the shared vector solver —
        the same derivation as :meth:`with_classification`, with no
        per-tuple objects.  ``predicate`` applies the Appendix D
        refinement to T? bounds, mirroring the executor's row path.
        Returns ``None`` (row-path fallback) when the cost function
        cannot be vectorized or the instance is degenerate
        (``L'_C = 0``).
        """
        if column is None:
            raise TrappError("AVG CHOOSE_REFRESH requires an aggregation column")
        if math.isinf(max_width):
            return RefreshPlan.empty(), None
        try:
            import numpy as np

            from repro.storage.columnar import CandidateVectors, candidate_order
        except ImportError:  # pragma: no cover - numpy-less hosts
            return None
        cv = self._sum._harvest(
            store, column, cost, certain=certain, possible=possible,
            predicate=predicate, positions=positions,
        )
        if cv is None:
            return None
        if len(cv) == 0:
            return RefreshPlan.empty(), None
        if positions is not None:
            certain_at, maybe_at = positions
            n_plus = int(len(certain_at))
        else:
            certain_at = maybe_at = None
            n_plus = int(np.count_nonzero(certain))
        l_count = float(n_plus)
        if l_count <= 0:
            # Degenerate Appendix F case (no guaranteed-nonempty answer
            # set): the row path's refresh-all-T? fallback handles it.
            return None
        lo, hi = store.endpoints(column)
        if certain_at is not None:
            # Index route: gather the O(k) candidate positions instead of
            # sweeping dense masks over the whole table.
            certain = certain_at
            maybe_lo, maybe_hi = lo[maybe_at], hi[maybe_at]
        else:
            maybe_mask = np.logical_and(possible, np.logical_not(certain))
            maybe_lo, maybe_hi = lo[maybe_mask], hi[maybe_mask]
        if predicate is not None and len(maybe_lo):
            from repro.predicates.batch import restrict_endpoints

            maybe_lo, maybe_hi = restrict_endpoints(
                maybe_lo, maybe_hi, predicate, column
            )
        sum0 = Bound(
            float(lo[certain].sum() + np.minimum(maybe_lo, 0.0).sum()),
            float(hi[certain].sum() + np.maximum(maybe_hi, 0.0).sum()),
        )
        capacity = l_count * max_width
        slope = self._slope(sum0, l_count, max_width)
        if slope > 0.0 and len(cv) > n_plus:
            # Harvest order is [T+ …, T? …]; the slope penalty lands on
            # the T? tail, and the (width, tid) ordering is rebuilt so
            # the uniform-cost walk sees the augmented weights.
            widths = cv.widths.copy()
            widths[n_plus:] += slope
            cv = CandidateVectors(
                tids=cv.tids,
                widths=widths,
                costs=cv.costs,
                order=candidate_order(widths, cv.tids),
                cost_min=cv.cost_min,
                cost_max=cv.cost_max,
                cost_total=cv.cost_total,
                costs_integral=cv.costs_integral,
            )
        return self._sum._solve_columnar(cv, capacity), None

    # ------------------------------------------------------------------
    def with_classification(
        self,
        classification: Classification,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        if column is None:
            raise TrappError("AVG CHOOSE_REFRESH requires an aggregation column")
        if math.isinf(max_width):
            return RefreshPlan.empty()
        plus = classification.plus
        maybe = classification.maybe
        if not plus and not maybe:
            return RefreshPlan.empty()

        sum0 = SUM.bound_with_classification(classification, column)
        count0 = COUNT.bound_with_classification(classification, column)
        l_count = count0.lo

        if l_count <= 0:
            return self._degenerate_plan(classification, column, max_width, cost)

        capacity = l_count * max_width
        slope = self._slope(sum0, l_count, max_width)

        items: list[tuple[Row, KnapsackItem]] = []
        for row in plus:
            weight = row.bound(column).width
            items.append((row, KnapsackItem(row.tid, weight, cost(row))))
        for row in maybe:
            weight = row.bound(column).extend_to_zero().width + slope
            items.append((row, KnapsackItem(row.tid, weight, cost(row))))

        knapsack_items = [item for _, item in items]
        solution = self._solve(knapsack_items, capacity)
        kept = solution.chosen
        chosen_rows = [row for row, item in items if item.item_id not in kept]
        return RefreshPlan.of(chosen_rows, cost)

    # ------------------------------------------------------------------
    @staticmethod
    def _slope(sum0: Bound, l_count: float, max_width: float) -> float:
        """The Appendix F per-T?-tuple weight penalty.

        ``max(H'_S, -L'_S, H'_S - L'_S) / L'_C - R``; clamped at zero when a
        very loose constraint would make it negative (keeping a T? tuple can
        never *relax* the SUM budget).
        """
        numerator = max(sum0.hi, -sum0.lo, sum0.hi - sum0.lo)
        return max(0.0, numerator / l_count - max_width)

    def _solve(self, items: list[KnapsackItem], capacity: float):
        profits = {item.profit for item in items}
        if len(profits) <= 1:
            return solve_greedy_uniform(items, capacity)
        integral = all(abs(p - round(p)) <= 1e-9 for p in profits)
        total = sum(round(item.profit) for item in items) if integral else math.inf
        if self.force_exact or (integral and total <= 100_000):
            return solve_exact_dp(items, capacity)
        return solve_ibarra_kim(items, capacity, self.epsilon)

    def _degenerate_plan(
        self,
        classification: Classification,
        column: str,
        max_width: float,
        cost: CostFunc,
    ) -> RefreshPlan:
        """Fallback when no tuple is guaranteed to satisfy the predicate.

        Refresh every T? tuple (deciding the predicate and making COUNT
        exact); additionally budget the surviving T+ tuples' SUM at
        ``R * |T+|`` so the final AVG width is covered even if every T?
        tuple drops out.
        """
        maybe_plan = RefreshPlan.of(classification.maybe, cost)
        if not classification.plus:
            return maybe_plan
        plus_plan = self._sum.without_predicate(
            classification.plus, column, max_width * len(classification.plus), cost
        )
        combined = set(maybe_plan.tids) | set(plus_plan.tids)
        total = maybe_plan.total_cost + plus_plan.total_cost
        return RefreshPlan(frozenset(combined), total)


CHOOSE_AVG = AvgChooseRefresh()
