"""CHOOSE_REFRESH for SUM (paper §5.2 and §6.2).

The complement trick: after refreshing a tuple its bound width is zero, so
the final answer width is the total width of the *unrefreshed* tuples.
Choosing the cheapest refresh set is therefore equivalent to packing a
knapsack of capacity ``R`` with the tuples *kept* (not refreshed),
maximizing kept refresh cost, where each tuple's weight is its bound width.

With a predicate over bounded columns, T− tuples are ignored and each T?
tuple's weight uses its bound extended to zero (§6.2): the tuple might not
satisfy the predicate and contribute nothing, so the answer must already
tolerate its value being absent.

Solver selection: the exact DP runs when every cost is integral and the
instance is small; otherwise the Ibarra–Kim ε-approximation is used (the
paper's choice, ε tunable).  The uniform-cost special case short-circuits
to the ascending-width greedy, which is optimal there (§5.2).

Two planner pipelines implement that selection:

* the **row path** (:meth:`SumChooseRefresh.without_predicate` /
  :meth:`~SumChooseRefresh.with_classification`) builds one
  :class:`KnapsackItem` per row — the reference implementation, also the
  fallback for opaque cost callables.  Its uniform branch accepts a
  pre-sorted width ordering (``width_order``, e.g. the table's
  ``<column>__width`` endpoint index) to skip the per-call sort.
* the **vector path** (:meth:`~SumChooseRefresh.without_predicate_columnar`
  / :meth:`~SumChooseRefresh.with_classification_columnar`) harvests
  candidate vectors straight from the table's
  :class:`~repro.storage.columnar.ColumnStore` — no per-tuple objects —
  answers the uniform-cost case with one sort-free ascending walk of
  the store's cached width ordering (the row greedy's own arithmetic,
  so plans are bit-identical), and hands everything else to
  :func:`repro.core.knapsack.solve_vector`.  Plans are equal-cost with
  the row path (exact/uniform branches) or carry the same (1 − ε)
  certificate (approximation branch, early exit enabled).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.knapsack import (
    KnapsackItem,
    solve_exact_dp,
    solve_greedy_uniform,
    solve_ibarra_kim,
    solve_vector,
)
from repro.core.refresh.base import CostFunc, RefreshPlan, uniform_cost, vector_cost_of
from repro.errors import TrappError
from repro.predicates.classify import Classification
from repro.storage.row import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.columnar import CandidateVectors, ColumnStore

__all__ = ["SumChooseRefresh", "CHOOSE_SUM"]

#: Default approximation parameter; the paper finds ε = 0.1 "very close to
#: optimal" while keeping the optimizer fast (Figure 5 discussion).
DEFAULT_EPSILON = 0.1

#: Instances whose total integral profit stays below this use the exact DP.
_EXACT_DP_PROFIT_LIMIT = 100_000


class SumChooseRefresh:
    """Knapsack-based refresh selection for bounded SUM queries."""

    name = "SUM"
    #: The columnar entry point can work from the index route's sorted
    #: T+/T? positions alone — the executor then never widens them to
    #: dense masks (ISSUE 10's O(log n + k) contract).
    uses_positions = True

    def __init__(
        self,
        epsilon: float = DEFAULT_EPSILON,
        force_exact: bool = False,
        force_approx: bool = False,
    ):
        if force_exact and force_approx:
            raise TrappError("force_exact and force_approx are mutually exclusive")
        self.epsilon = epsilon
        self.force_exact = force_exact
        #: Always run the Ibarra-Kim scheme, even when the instance admits
        #: the exact DP or uniform greedy.  Used by the Figure 5 bench to
        #: measure the approximation's epsilon/time tradeoff in isolation.
        self.force_approx = force_approx

    # ------------------------------------------------------------------
    def without_predicate(
        self,
        rows: Sequence[Row],
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
        width_order=None,
    ) -> RefreshPlan:
        if column is None:
            raise TrappError("SUM CHOOSE_REFRESH requires an aggregation column")
        items = [
            (row, KnapsackItem(row.tid, row.bound(column).width, cost(row)))
            for row in rows
        ]
        return self._solve(items, max_width, cost, width_order=width_order)

    def with_classification(
        self,
        classification: Classification,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        if column is None:
            raise TrappError("SUM CHOOSE_REFRESH requires an aggregation column")
        items: list[tuple[Row, KnapsackItem]] = []
        for row in classification.plus:
            width = row.bound(column).width
            items.append((row, KnapsackItem(row.tid, width, cost(row))))
        for row in classification.maybe:
            width = row.bound(column).extend_to_zero().width
            items.append((row, KnapsackItem(row.tid, width, cost(row))))
        # T− tuples are ignored entirely: they contribute nothing and need
        # no refresh.
        return self._solve(items, max_width, cost)

    # ------------------------------------------------------------------
    # Vector path: plan straight off the columnar mirror
    # ------------------------------------------------------------------
    def without_predicate_columnar(
        self,
        store: "ColumnStore",
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> "tuple[RefreshPlan, CandidateVectors] | None":
        """§5 planning over the whole table, no row objects.

        Returns ``(plan, candidates)``, or ``None`` when the cost
        function cannot be vectorized (caller falls back to the row
        path).  The candidate vectors are returned so the executor can
        assemble §8.2 rebatch metadata without another sweep.
        """
        if column is None:
            raise TrappError("SUM CHOOSE_REFRESH requires an aggregation column")
        cv = self._harvest(store, column, cost)
        if cv is None:
            return None
        return self._solve_columnar(cv, max_width), cv

    def with_classification_columnar(
        self,
        store: "ColumnStore",
        certain,
        possible,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
        predicate=None,
        positions=None,
    ) -> "tuple[RefreshPlan, CandidateVectors] | None":
        """§6.2 planning from classification masks, no row objects.

        ``predicate`` (when given) applies the Appendix D refinement to
        T? bounds before extending them to zero, mirroring the
        executor's row-path `_refined_classification`.  ``positions``
        (when given) carries the sorted T+/T? tuple positions straight
        from the endpoint-index classifier, so harvesting gathers O(k)
        candidates without re-scanning the dense masks.
        """
        if column is None:
            raise TrappError("SUM CHOOSE_REFRESH requires an aggregation column")
        cv = self._harvest(
            store, column, cost, certain=certain, possible=possible,
            predicate=predicate, positions=positions,
        )
        if cv is None:
            return None
        return self._solve_columnar(cv, max_width), cv

    def _harvest(
        self, store, column, cost, certain=None, possible=None, predicate=None,
        positions=None,
    ):
        kind = vector_cost_of(cost)
        if kind is None or store is None:
            return None
        try:
            from repro.storage.columnar import cost_vector, harvest_candidates
        except ImportError:  # pragma: no cover - numpy-less hosts
            return None
        if kind[0] == "column":
            return harvest_candidates(
                store, column, certain=certain, possible=possible,
                predicate=predicate, cost_column=kind[1], positions=positions,
            )
        if kind[0] == "source":
            # Per-source amortized models: resolve the source column →
            # cost mapping to one tuple-id-ordered vector up front.
            costs = cost_vector(store, kind)
            if costs is None:
                return None
            return harvest_candidates(
                store, column, certain=certain, possible=possible,
                predicate=predicate, cost_array=costs, positions=positions,
            )
        return harvest_candidates(
            store, column, certain=certain, possible=possible,
            predicate=predicate, cost_value=kind[1], positions=positions,
        )

    def _solve_columnar(self, cv: "CandidateVectors", capacity: float) -> RefreshPlan:
        """Solver selection over candidate vectors (mirrors ``_solve``)."""
        if len(cv) == 0:
            return RefreshPlan.empty()
        if not self.force_approx and cv.cost_min == cv.cost_max:
            # Uniform costs: the kept set is the longest sorted-width
            # prefix fitting the budget (§5.2 greedy).  The cut uses the
            # row path's own arithmetic — ``w <= remaining; remaining -=
            # w`` over the same (width, tid) ordering — so the two
            # planners return bit-identical plans on any data, not just
            # when prefix sums and sequential subtraction round alike.
            import numpy as np

            remaining = capacity
            cut = 0
            for width in np.asarray(cv.widths)[cv.order].tolist():
                if width <= remaining:
                    remaining -= width
                    cut += 1
                else:
                    break  # ascending: nothing later fits either
            refresh = cv.order[cut:]
            return RefreshPlan(
                frozenset(int(t) for t in cv.tids[refresh]),
                cv.cost_min * len(refresh),
            )
        weights, costs, order = cv.solver_vectors()
        solution = solve_vector(
            weights,
            costs,
            capacity,
            epsilon=self.epsilon,
            force_exact=self.force_exact,
            force_approx=self.force_approx,
            order=order,
            integral=cv.costs_integral,
            profit_total=cv.cost_total if cv.costs_integral else None,
            exact_profit_limit=_EXACT_DP_PROFIT_LIMIT,
        )
        tids = cv.tids
        return RefreshPlan(
            frozenset(int(tids[k]) for k in solution.refresh),
            solution.refresh_profit,
        )

    # ------------------------------------------------------------------
    def _solve(
        self,
        items: list[tuple[Row, KnapsackItem]],
        capacity: float,
        cost: CostFunc,
        width_order=None,
    ) -> RefreshPlan:
        knapsack_items = [item for _, item in items]
        costs = {item.item_id: item.profit for item in knapsack_items}

        if self.force_approx:
            solution = solve_ibarra_kim(knapsack_items, capacity, self.epsilon)
        elif self._is_uniform(costs):
            solution = solve_greedy_uniform(
                knapsack_items, capacity, sorted_widths=width_order
            )
        elif self.force_exact or self._exact_feasible(costs):
            solution = solve_exact_dp(knapsack_items, capacity)
        else:
            solution = solve_ibarra_kim(knapsack_items, capacity, self.epsilon)

        kept = solution.chosen
        chosen_rows = [row for row, item in items if item.item_id not in kept]
        return RefreshPlan.of(chosen_rows, cost)

    @staticmethod
    def _is_uniform(costs: dict[int, float]) -> bool:
        values = set(costs.values())
        return len(values) <= 1

    @staticmethod
    def _exact_feasible(costs: dict[int, float]) -> bool:
        total = 0.0
        for value in costs.values():
            if abs(value - round(value)) > 1e-9:
                return False
            total += round(value)
        return total <= _EXACT_DP_PROFIT_LIMIT


CHOOSE_SUM = SumChooseRefresh()
