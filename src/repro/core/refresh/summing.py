"""CHOOSE_REFRESH for SUM (paper §5.2 and §6.2).

The complement trick: after refreshing a tuple its bound width is zero, so
the final answer width is the total width of the *unrefreshed* tuples.
Choosing the cheapest refresh set is therefore equivalent to packing a
knapsack of capacity ``R`` with the tuples *kept* (not refreshed),
maximizing kept refresh cost, where each tuple's weight is its bound width.

With a predicate over bounded columns, T− tuples are ignored and each T?
tuple's weight uses its bound extended to zero (§6.2): the tuple might not
satisfy the predicate and contribute nothing, so the answer must already
tolerate its value being absent.

Solver selection: the exact DP runs when every cost is integral and the
instance is small; otherwise the Ibarra–Kim ε-approximation is used (the
paper's choice, ε tunable).  The uniform-cost special case short-circuits
to the ascending-width greedy, which is optimal there (§5.2).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.bound import Bound
from repro.core.knapsack import (
    KnapsackItem,
    solve_exact_dp,
    solve_greedy_uniform,
    solve_ibarra_kim,
)
from repro.core.refresh.base import CostFunc, RefreshPlan, uniform_cost
from repro.errors import TrappError
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = ["SumChooseRefresh", "CHOOSE_SUM"]

#: Default approximation parameter; the paper finds ε = 0.1 "very close to
#: optimal" while keeping the optimizer fast (Figure 5 discussion).
DEFAULT_EPSILON = 0.1

#: Instances whose total integral profit stays below this use the exact DP.
_EXACT_DP_PROFIT_LIMIT = 100_000


class SumChooseRefresh:
    """Knapsack-based refresh selection for bounded SUM queries."""

    name = "SUM"

    def __init__(
        self,
        epsilon: float = DEFAULT_EPSILON,
        force_exact: bool = False,
        force_approx: bool = False,
    ):
        if force_exact and force_approx:
            raise TrappError("force_exact and force_approx are mutually exclusive")
        self.epsilon = epsilon
        self.force_exact = force_exact
        #: Always run the Ibarra-Kim scheme, even when the instance admits
        #: the exact DP or uniform greedy.  Used by the Figure 5 bench to
        #: measure the approximation's epsilon/time tradeoff in isolation.
        self.force_approx = force_approx

    # ------------------------------------------------------------------
    def without_predicate(
        self,
        rows: Sequence[Row],
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        if column is None:
            raise TrappError("SUM CHOOSE_REFRESH requires an aggregation column")
        items = [
            (row, KnapsackItem(row.tid, row.bound(column).width, cost(row)))
            for row in rows
        ]
        return self._solve(items, max_width, cost)

    def with_classification(
        self,
        classification: Classification,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        if column is None:
            raise TrappError("SUM CHOOSE_REFRESH requires an aggregation column")
        items: list[tuple[Row, KnapsackItem]] = []
        for row in classification.plus:
            width = row.bound(column).width
            items.append((row, KnapsackItem(row.tid, width, cost(row))))
        for row in classification.maybe:
            width = row.bound(column).extend_to_zero().width
            items.append((row, KnapsackItem(row.tid, width, cost(row))))
        # T− tuples are ignored entirely: they contribute nothing and need
        # no refresh.
        return self._solve(items, max_width, cost)

    # ------------------------------------------------------------------
    def _solve(
        self,
        items: list[tuple[Row, KnapsackItem]],
        capacity: float,
        cost: CostFunc,
    ) -> RefreshPlan:
        knapsack_items = [item for _, item in items]
        costs = {item.item_id: item.profit for item in knapsack_items}

        if self.force_approx:
            solution = solve_ibarra_kim(knapsack_items, capacity, self.epsilon)
        elif self._is_uniform(costs):
            solution = solve_greedy_uniform(knapsack_items, capacity)
        elif self.force_exact or self._exact_feasible(costs):
            solution = solve_exact_dp(knapsack_items, capacity)
        else:
            solution = solve_ibarra_kim(knapsack_items, capacity, self.epsilon)

        kept = solution.chosen
        chosen_rows = [row for row, item in items if item.item_id not in kept]
        return RefreshPlan.of(chosen_rows, cost)

    @staticmethod
    def _is_uniform(costs: dict[int, float]) -> bool:
        values = set(costs.values())
        return len(values) <= 1

    @staticmethod
    def _exact_feasible(costs: dict[int, float]) -> bool:
        total = 0.0
        for value in costs.values():
            if abs(value - round(value)) > 1e-9:
                return False
            total += round(value)
        return total <= _EXACT_DP_PROFIT_LIMIT


CHOOSE_SUM = SumChooseRefresh()
