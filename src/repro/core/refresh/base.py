"""Shared machinery for CHOOSE_REFRESH optimizers.

A CHOOSE_REFRESH algorithm receives the cached rows (already partitioned
into T+/T?/T− when a bounded-column predicate is present), the aggregation
column, the precision constraint ``R``, and a per-tuple refresh cost
function.  It returns a :class:`RefreshPlan`: the set of tuple ids to
refresh, chosen so the recomputed bounded answer is guaranteed to satisfy
``H_A - L_A <= R`` for *any* precise values of the refreshed tuples within
their current bounds.

Cost functions default to the uniform model; the replication layer's
:mod:`repro.replication.costs` provides richer models (per-source,
distance-weighted) that plug in unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence

from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = [
    "CostFunc",
    "RefreshPlan",
    "uniform_cost",
    "cost_from_column",
    "cost_from_sources",
    "vector_cost_of",
    "resolve_columnar_costs",
    "ChooseRefresh",
]

CostFunc = Callable[[Row], float]


def uniform_cost(row: Row) -> float:
    """Every refresh costs 1 (the paper's uniform-cost special case)."""
    return 1.0


#: Vector-planner tag: the columnar CHOOSE_REFRESH paths can evaluate this
#: cost function over a whole candidate set without touching Row objects.
uniform_cost.vector_cost = ("uniform", 1.0)  # type: ignore[attr-defined]


def cost_from_column(column: str) -> CostFunc:
    """Read each tuple's refresh cost from one of its own (exact) columns,
    as in the paper's Figure 2 sample table."""

    def cost(row: Row) -> float:
        return float(row.number(column))

    cost.vector_cost = ("column", column)  # type: ignore[attr-defined]
    return cost


def cost_from_sources(
    column: str, costs_by_source: dict, default: float = 1.0
) -> CostFunc:
    """Per-source refresh costs, keyed by a source-id column.

    The "likely in practice" §3 model — every tuple costs whatever its
    source charges — as a tagged cost function: the row path reads the
    source id from ``column`` and maps it through ``costs_by_source``;
    the vector planner evaluates the same mapping over the whole column
    at once (``vector_cost`` kind ``"source"``), so per-source amortized
    models plan columnar instead of falling back to the object path.
    """
    table = dict(costs_by_source)

    def cost(row: Row) -> float:
        return float(table.get(row.get(column), default))

    cost.vector_cost = ("source", (column, table, float(default)))  # type: ignore[attr-defined]
    return cost


def vector_cost_of(cost: CostFunc) -> tuple[str, object] | None:
    """How to evaluate ``cost`` columnar-side, if at all.

    Returns ``("uniform", value)`` for constant costs, ``("column",
    name)`` for costs stored in a table column, ``("source", (column,
    costs_by_source, default))`` for per-source costs keyed by a
    source-id column, or ``None`` for opaque callables — the signal to
    fall back to the row-at-a-time planner.  Cost functions opt in by
    carrying a ``vector_cost`` attribute (:func:`uniform_cost`,
    :func:`cost_from_column`, :func:`cost_from_sources`, and the
    :mod:`repro.replication.costs` models set it).
    """
    tag = getattr(cost, "vector_cost", None)
    if tag is None:
        return None
    kind, arg = tag
    if kind == "uniform":
        return ("uniform", float(arg))
    if kind == "column":
        return ("column", str(arg))
    if kind == "source":
        column, table, default = arg
        return ("source", (str(column), dict(table), float(default)))
    return None


def resolve_columnar_costs(store, cost: CostFunc):
    """Tid-ordered NumPy cost vector for a tagged cost function, or ``None``.

    The one fallback contract every columnar chooser shares: ``None`` —
    fall back to the row path — when the cost callable is untagged, the
    store is missing, the host has no NumPy, or the tagged cost column
    cannot be read exactly (see
    :func:`repro.storage.columnar.cost_vector`).
    """
    kind = vector_cost_of(cost)
    if kind is None or store is None:
        return None
    try:
        from repro.storage.columnar import cost_vector
    except ImportError:  # pragma: no cover - numpy-less hosts
        return None
    return cost_vector(store, kind)


@dataclass(frozen=True, slots=True)
class RefreshPlan:
    """The optimizer's decision: which tuples to refresh and what it costs.

    After dispatch, the effective plan a query receives back may carry
    *failure* metadata: ``unreached`` are planned tuples whose sources
    could not be contacted (after retries, breaker gating, and replica
    failover), ``failed_sources`` names those sources.  ``tids`` then
    holds only the tuples actually refreshed, so downstream accounting
    (cost shares, invalidation) stays truthful; the executor finishes
    such queries in degraded mode from the bounds it has.
    """

    tids: frozenset[int]
    total_cost: float
    unreached: frozenset[int] = frozenset()
    failed_sources: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """Whether some planned tuples could not be refreshed."""
        return bool(self.unreached)

    @staticmethod
    def of(rows: Iterable[Row], cost: CostFunc) -> "RefreshPlan":
        rows = list(rows)
        return RefreshPlan(
            frozenset(row.tid for row in rows),
            sum(cost(row) for row in rows),
        )

    @staticmethod
    def empty() -> "RefreshPlan":
        return RefreshPlan(frozenset(), 0.0)

    def __len__(self) -> int:
        return len(self.tids)


class ChooseRefresh(Protocol):
    """Interface implemented by each aggregate's optimizer pair."""

    name: str

    def without_predicate(
        self,
        rows: Sequence[Row],
        column: str | None,
        max_width: float,
        cost: CostFunc,
    ) -> RefreshPlan:
        """Paper §5 variants: every row contributes to the aggregate."""
        ...

    def with_classification(
        self,
        classification: Classification,
        column: str | None,
        max_width: float,
        cost: CostFunc,
    ) -> RefreshPlan:
        """Paper §6 variants: rows partitioned by a bounded predicate."""
        ...
