"""CHOOSE_REFRESH for COUNT (paper §5.3 and §6.3).

Without a predicate, COUNT is always exact (cardinality is replicated
eagerly), so the refresh set is empty.

With a predicate, the answer width equals ``|T?|`` and refreshing any T?
tuple is guaranteed to move it out of T? (its bounds collapse, deciding the
predicate).  The optimal plan is therefore the ``ceil(|T?| - R)`` *cheapest*
T? tuples — a selection problem solvable by sorting (``O(n log n)``) or
sublinearly with a cost index.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.refresh.base import (
    CostFunc,
    RefreshPlan,
    resolve_columnar_costs,
    uniform_cost,
)
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = ["CountChooseRefresh", "CHOOSE_COUNT"]


class CountChooseRefresh:
    """Optimal refresh selection for bounded COUNT queries."""

    name = "COUNT"
    #: Positions-only capable (see SumChooseRefresh.uses_positions).
    uses_positions = True

    def without_predicate(
        self,
        rows: Sequence[Row],
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        # Cardinality is exact at the cache; nothing to refresh.
        return RefreshPlan.empty()

    def with_classification(
        self,
        classification: Classification,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        uncertain = len(classification.maybe)
        if math.isinf(max_width):
            needed = 0
        else:
            needed = max(0, math.ceil(uncertain - max_width - 1e-9))
        if needed == 0:
            return RefreshPlan.empty()
        cheapest = sorted(classification.maybe, key=lambda row: (cost(row), row.tid))
        return RefreshPlan.of(cheapest[:needed], cost)

    # ------------------------------------------------------------------
    def without_predicate_columnar(
        self,
        store,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ):
        """Vector counterpart: COUNT without a predicate is always exact."""
        return RefreshPlan.empty(), None

    def with_classification_columnar(
        self,
        store,
        certain,
        possible,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
        predicate=None,
        positions=None,
    ):
        """Pick the cheapest T? tuples straight off the column arrays."""
        costs = resolve_columnar_costs(store, cost)
        if costs is None:
            return None
        import numpy as np

        if positions is not None:
            # Index route: the classifier already hands over sorted T?
            # positions — O(k) gathers, no dense mask sweep.
            maybe = positions[1]
            uncertain = int(len(maybe))
        else:
            maybe = np.logical_and(possible, np.logical_not(certain))
            uncertain = int(np.count_nonzero(maybe))
        if math.isinf(max_width):
            needed = 0
        else:
            needed = max(0, math.ceil(uncertain - max_width - 1e-9))
        if needed == 0:
            return RefreshPlan.empty(), None
        tids = store.sorted_tids()[maybe]
        maybe_costs = costs[maybe]
        pick = np.lexsort((tids, maybe_costs))[:needed]
        return (
            RefreshPlan(
                frozenset(int(t) for t in tids[pick]),
                float(maybe_costs[pick].sum()),
            ),
            None,
        )


CHOOSE_COUNT = CountChooseRefresh()
