"""CHOOSE_REFRESH for MIN and MAX (paper §5.1, §6.1, Appendices B/C).

For MIN without a predicate, the refresh set is *forced*: a tuple whose
lower endpoint lies below ``min_k(H_k) - R`` could, if left unrefreshed,
leave the answer wider than ``R`` in the worst case, and Appendix B proves
every such tuple must appear in every feasible solution — so the optimal
set is exactly

    ``TR = { t_i : L_i < min_k(H_k) - R }``

independent of refresh costs.  With a predicate, the threshold uses the
guaranteed upper bound ``min_{T+}(H_k) - R`` and candidates range over
``T+ ∪ T?`` (refreshing a T? tuple that drops into T− never hurts the
bound).  MAX is the mirror image.

Both run in ``O(n)`` with a plain scan, or sublinear given lower/upper
endpoint indexes (the table's ``create_endpoint_indexes``); the
index-accelerated path is exposed via ``without_predicate_indexed``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.refresh.base import (
    CostFunc,
    RefreshPlan,
    resolve_columnar_costs,
    uniform_cost,
)
from repro.errors import TrappError
from repro.predicates.classify import Classification
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = ["MinChooseRefresh", "MaxChooseRefresh", "CHOOSE_MIN", "CHOOSE_MAX"]


def _require_column(name: str, column: str | None) -> str:
    if column is None:
        raise TrappError(f"{name} CHOOSE_REFRESH requires an aggregation column")
    return column


def _columnar_inputs(store, cost: CostFunc, column: str):
    """``(np, costs, lo, hi)`` for a vector plan, or ``None`` to fall back."""
    costs = resolve_columnar_costs(store, cost)
    if costs is None:
        return None
    import numpy as np  # resolve_columnar_costs proved it importable

    lo, hi = store.endpoints(column)
    return np, costs, lo, hi


def _threshold_plan(np, store, costs, chosen_mask) -> tuple[RefreshPlan, None]:
    tids = store.sorted_tids()[chosen_mask]
    return (
        RefreshPlan(
            frozenset(int(t) for t in tids), float(costs[chosen_mask].sum())
        ),
        None,
    )


class MinChooseRefresh:
    """Optimal refresh selection for bounded MIN queries."""

    name = "MIN"

    def without_predicate(
        self,
        rows: Sequence[Row],
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        column = _require_column(self.name, column)
        min_hi = min((row.bound(column).hi for row in rows), default=math.inf)
        threshold = min_hi - max_width
        chosen = [row for row in rows if row.bound(column).lo < threshold]
        return RefreshPlan.of(chosen, cost)

    def with_classification(
        self,
        classification: Classification,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        column = _require_column(self.name, column)
        min_hi_plus = min(
            (row.bound(column).hi for row in classification.plus),
            default=math.inf,
        )
        threshold = min_hi_plus - max_width
        chosen = [
            row
            for row in classification.plus_or_maybe
            if row.bound(column).lo < threshold
        ]
        return RefreshPlan.of(chosen, cost)

    # ------------------------------------------------------------------
    def without_predicate_columnar(
        self,
        store,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ):
        """Appendix B's forced set as one array sweep (no row objects)."""
        column = _require_column(self.name, column)
        inputs = _columnar_inputs(store, cost, column)
        if inputs is None:
            return None
        np, costs, lo, hi = inputs
        min_hi = float(hi.min()) if len(hi) else math.inf
        threshold = min_hi - max_width
        if math.isnan(threshold):  # inf budget against an empty/unbounded table
            chosen = np.zeros(len(lo), dtype=bool)
        else:
            chosen = lo < threshold
        return _threshold_plan(np, store, costs, chosen)

    def with_classification_columnar(
        self,
        store,
        certain,
        possible,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
        predicate=None,
        positions=None,
    ):
        """§6.1 threshold over T+ ∪ T?, Appendix-D-refined T? bounds."""
        column = _require_column(self.name, column)
        inputs = _columnar_inputs(store, cost, column)
        if inputs is None:
            return None
        np, costs, lo, hi = inputs
        min_hi_plus = (
            float(hi[certain].min()) if np.any(certain) else math.inf
        )
        threshold = min_hi_plus - max_width
        maybe = np.logical_and(possible, np.logical_not(certain))
        maybe_lo = lo[maybe]
        if predicate is not None and len(maybe_lo):
            from repro.predicates.batch import restrict_endpoints

            maybe_lo, _ = restrict_endpoints(maybe_lo, hi[maybe], predicate, column)
        if math.isnan(threshold):
            chosen = np.zeros(len(lo), dtype=bool)
        else:
            chosen = np.logical_and(certain, lo < threshold)
            chosen[np.flatnonzero(maybe)[maybe_lo < threshold]] = True
        return _threshold_plan(np, store, costs, chosen)

    def without_predicate_indexed(
        self,
        table: Table,
        column: str,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        """Index-accelerated variant: ``O(log n + |TR|)``.

        Uses the ``column__hi`` index to find ``min_k(H_k)`` and the
        ``column__lo`` index to range-scan tuples below the threshold,
        matching the sublinear bound claimed in §5.1.
        """
        hi_index = table.indexes.get(f"{column}__hi")
        lo_index = table.indexes.get(f"{column}__lo")
        if hi_index is None or lo_index is None:
            raise TrappError(
                f"table {table.name!r} lacks endpoint indexes on {column!r}; "
                "call create_endpoint_indexes first"
            )
        threshold = hi_index.min_key() - max_width
        chosen = [table.row(tid) for tid in lo_index.tids_below(threshold)]
        return RefreshPlan.of(chosen, cost)


class MaxChooseRefresh:
    """Optimal refresh selection for bounded MAX queries (Appendix C)."""

    name = "MAX"

    def without_predicate(
        self,
        rows: Sequence[Row],
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        column = _require_column(self.name, column)
        max_lo = max((row.bound(column).lo for row in rows), default=-math.inf)
        threshold = max_lo + max_width
        chosen = [row for row in rows if row.bound(column).hi > threshold]
        return RefreshPlan.of(chosen, cost)

    def with_classification(
        self,
        classification: Classification,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        column = _require_column(self.name, column)
        max_lo_plus = max(
            (row.bound(column).lo for row in classification.plus),
            default=-math.inf,
        )
        threshold = max_lo_plus + max_width
        chosen = [
            row
            for row in classification.plus_or_maybe
            if row.bound(column).hi > threshold
        ]
        return RefreshPlan.of(chosen, cost)

    # ------------------------------------------------------------------
    def without_predicate_columnar(
        self,
        store,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ):
        """Appendix C's forced set as one array sweep (MIN's mirror)."""
        column = _require_column(self.name, column)
        inputs = _columnar_inputs(store, cost, column)
        if inputs is None:
            return None
        np, costs, lo, hi = inputs
        max_lo = float(lo.max()) if len(lo) else -math.inf
        threshold = max_lo + max_width
        if math.isnan(threshold):
            chosen = np.zeros(len(lo), dtype=bool)
        else:
            chosen = hi > threshold
        return _threshold_plan(np, store, costs, chosen)

    def with_classification_columnar(
        self,
        store,
        certain,
        possible,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
        predicate=None,
        positions=None,
    ):
        column = _require_column(self.name, column)
        inputs = _columnar_inputs(store, cost, column)
        if inputs is None:
            return None
        np, costs, lo, hi = inputs
        max_lo_plus = (
            float(lo[certain].max()) if np.any(certain) else -math.inf
        )
        threshold = max_lo_plus + max_width
        maybe = np.logical_and(possible, np.logical_not(certain))
        maybe_hi = hi[maybe]
        if predicate is not None and len(maybe_hi):
            from repro.predicates.batch import restrict_endpoints

            _, maybe_hi = restrict_endpoints(lo[maybe], maybe_hi, predicate, column)
        if math.isnan(threshold):
            chosen = np.zeros(len(lo), dtype=bool)
        else:
            chosen = np.logical_and(certain, hi > threshold)
            chosen[np.flatnonzero(maybe)[maybe_hi > threshold]] = True
        return _threshold_plan(np, store, costs, chosen)

    def without_predicate_indexed(
        self,
        table: Table,
        column: str,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        """Index-accelerated variant mirroring MIN's."""
        hi_index = table.indexes.get(f"{column}__hi")
        lo_index = table.indexes.get(f"{column}__lo")
        if hi_index is None or lo_index is None:
            raise TrappError(
                f"table {table.name!r} lacks endpoint indexes on {column!r}; "
                "call create_endpoint_indexes first"
            )
        threshold = lo_index.max_key() + max_width
        chosen = [table.row(tid) for tid in hi_index.tids_above(threshold)]
        return RefreshPlan.of(chosen, cost)


CHOOSE_MIN = MinChooseRefresh()
CHOOSE_MAX = MaxChooseRefresh()
