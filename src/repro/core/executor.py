"""The three-step TRAPP/AG query executor (paper §4).

Executing ``SELECT AGG(T.a) WITHIN R FROM T WHERE P`` proceeds as:

1. compute a bounded answer from the cached bounds alone; if its width
   already satisfies the precision constraint, stop;
2. run the aggregate's CHOOSE_REFRESH algorithm to pick a cheapest set of
   tuples and ask their sources to refresh them;
3. recompute the bounded answer over the now partially refreshed cache —
   guaranteed by construction to satisfy the constraint.

The executor is agnostic to where refreshed values come from: callers
provide a :class:`RefreshProvider` (the replication layer's cache, or a
test stub) that collapses cached bounds to exact values in place.

Predicates referencing only exact columns are evaluated two-valued up
front (the §5 "no selection predicate" regime); predicates touching
bounded columns go through T+/T?/T− classification (§6).  The Appendix D
refinement — shrinking T? bounds when the predicate restricts the
aggregation column itself — is applied for the answer computation when
``refine_bounds`` is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.core.aggregates import get_aggregate
from repro.core.answer import BoundedAnswer
from repro.core.bound import Bound
from repro.core.constraints import AbsolutePrecision, PrecisionConstraint
from repro.core.refresh import CostFunc, get_choose_refresh, uniform_cost
from repro.errors import ConstraintUnsatisfiableError, UnknownColumnError
from repro.predicates.ast import Predicate, TruePredicate, columns_of
from repro.predicates.classify import Classification, classify, restrict_bound
from repro.predicates.eval import evaluate_exact
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = ["RefreshProvider", "NullRefreshProvider", "QueryExecutor", "execute_query"]


class RefreshProvider(Protocol):
    """Collapses cached bounds to exact master values on request."""

    def refresh(self, table: Table, tids: Iterable[int]) -> None:
        """Refresh the given tuples of ``table`` in place.

        After the call, every bounded column of each named tuple must hold
        an exact value (zero-width bound or plain number).
        """
        ...


class NullRefreshProvider:
    """A provider that can never refresh (pure cached-data querying).

    Useful for the "imprecise mode" extreme and for tests; the executor
    raises :class:`ConstraintUnsatisfiableError` if a refresh is required.
    """

    def refresh(self, table: Table, tids: Iterable[int]) -> None:
        tids = list(tids)
        if tids:
            raise ConstraintUnsatisfiableError(
                f"query requires refreshing tuples {sorted(tids)} but no "
                "refresh provider is connected"
            )


@dataclass(slots=True)
class _PreparedPredicate:
    """A predicate analyzed against a table's schema."""

    predicate: Predicate
    touches_bounded: bool


class QueryExecutor:
    """Executes bounded aggregation queries against one cached table."""

    def __init__(
        self,
        refresher: RefreshProvider | None = None,
        epsilon: float | None = None,
        force_exact: bool = False,
        refine_bounds: bool = True,
    ) -> None:
        self.refresher = refresher if refresher is not None else NullRefreshProvider()
        self.epsilon = epsilon
        self.force_exact = force_exact
        self.refine_bounds = refine_bounds

    # ------------------------------------------------------------------
    def execute(
        self,
        table: Table,
        aggregate: str,
        column: str | None,
        constraint: PrecisionConstraint | float,
        predicate: Predicate | None = None,
        cost: CostFunc = uniform_cost,
    ) -> BoundedAnswer:
        """Run the three-step pipeline and return a guaranteed answer."""
        if isinstance(constraint, (int, float)):
            constraint = AbsolutePrecision(float(constraint))
        predicate = predicate if predicate is not None else TruePredicate()
        prepared = self._prepare(table, predicate)
        spec = get_aggregate(aggregate)
        if spec.needs_column and column is None:
            raise UnknownColumnError("<missing>", table.name)

        initial = self._compute_bound(table, spec, column, prepared)
        max_width = constraint.resolve(initial)
        if initial.width <= max_width + 1e-9:
            return BoundedAnswer(bound=initial, initial_bound=initial)

        plan = self._choose_refresh(table, spec, column, prepared, max_width, cost)
        self.refresher.refresh(table, plan.tids)

        final = self._compute_bound(table, spec, column, prepared)
        if final.width > max_width + 1e-6:
            raise ConstraintUnsatisfiableError(
                f"post-refresh answer {final} (width {final.width:g}) violates "
                f"constraint {max_width:g}; this indicates an optimizer bug"
            )
        return BoundedAnswer(
            bound=final,
            refreshed=plan.tids,
            refresh_cost=plan.total_cost,
            initial_bound=initial,
        )

    # ------------------------------------------------------------------
    def _prepare(self, table: Table, predicate: Predicate) -> _PreparedPredicate:
        touched = columns_of(predicate)
        for name in touched:
            table.schema.column(name)  # raises on unknown columns
        touches_bounded = any(
            table.schema[name].is_bounded and not self._column_exact(table, name)
            for name in touched
        )
        return _PreparedPredicate(predicate, touches_bounded)

    @staticmethod
    def _column_exact(table: Table, column: str) -> bool:
        """True when every current value in the column is exactly known."""
        return all(row.is_exact(column) for row in table)

    # ------------------------------------------------------------------
    def _rows_no_predicate(
        self, table: Table, prepared: _PreparedPredicate
    ) -> list[Row]:
        """The §5 regime: filter rows two-valued over exact columns."""
        if isinstance(prepared.predicate, TruePredicate):
            return table.rows()
        return [
            row for row in table.rows() if evaluate_exact(prepared.predicate, row)
        ]

    def _refined_classification(
        self,
        classification: Classification,
        prepared: _PreparedPredicate,
        column: str | None,
    ) -> Classification:
        """Apply the Appendix D bound-shrinking refinement to T? tuples."""
        if not self.refine_bounds or column is None:
            return classification
        refined_maybe: list[Row] = []
        for row in classification.maybe:
            original = row.bound(column)
            shrunk = restrict_bound(original, prepared.predicate, column)
            if shrunk != original:
                clone = row.copy()
                clone.set(column, shrunk)
                refined_maybe.append(clone)
            else:
                refined_maybe.append(row)
        return Classification(
            plus=classification.plus,
            maybe=refined_maybe,
            minus=classification.minus,
        )

    def _compute_bound(
        self,
        table: Table,
        spec,
        column: str | None,
        prepared: _PreparedPredicate,
    ) -> Bound:
        if not prepared.touches_bounded:
            rows = self._rows_no_predicate(table, prepared)
            return spec.bound_without_predicate(rows, column)
        classification = classify(table.rows(), prepared.predicate)
        classification = self._refined_classification(classification, prepared, column)
        return spec.bound_with_classification(classification, column)

    def _choose_refresh(
        self,
        table: Table,
        spec,
        column: str | None,
        prepared: _PreparedPredicate,
        max_width: float,
        cost: CostFunc,
    ):
        chooser = get_choose_refresh(
            spec.name, epsilon=self.epsilon, force_exact=self.force_exact
        )
        if not prepared.touches_bounded:
            rows = self._rows_no_predicate(table, prepared)
            return chooser.without_predicate(rows, column, max_width, cost)
        classification = classify(table.rows(), prepared.predicate)
        classification = self._refined_classification(classification, prepared, column)
        return chooser.with_classification(classification, column, max_width, cost)


def execute_query(
    table: Table,
    aggregate: str,
    column: str | None,
    constraint: PrecisionConstraint | float,
    predicate: Predicate | None = None,
    cost: CostFunc = uniform_cost,
    refresher: RefreshProvider | None = None,
    epsilon: float | None = None,
) -> BoundedAnswer:
    """One-shot convenience wrapper around :class:`QueryExecutor`."""
    executor = QueryExecutor(refresher=refresher, epsilon=epsilon)
    return executor.execute(table, aggregate, column, constraint, predicate, cost)
