"""The three-step TRAPP/AG query executor (paper §4).

Executing ``SELECT AGG(T.a) WITHIN R FROM T WHERE P`` proceeds as:

1. compute a bounded answer from the cached bounds alone; if its width
   already satisfies the precision constraint, stop;
2. run the aggregate's CHOOSE_REFRESH algorithm to pick a cheapest set of
   tuples and ask their sources to refresh them;
3. recompute the bounded answer over the now partially refreshed cache —
   guaranteed by construction to satisfy the constraint.

The executor is agnostic to where refreshed values come from: callers
provide a :class:`RefreshProvider` (the replication layer's cache, or a
test stub) that collapses cached bounds to exact values in place.

Predicates referencing only exact columns are evaluated two-valued up
front (the §5 "no selection predicate" regime); predicates touching
bounded columns go through T+/T?/T− classification (§6).  The Appendix D
refinement — shrinking T? bounds when the predicate restricts the
aggregation column itself — is applied for the answer computation when
``refine_bounds`` is enabled.

Two performance properties hold on the hot path:

* **Columnar fast paths.**  When the table carries a columnar mirror
  (:class:`~repro.storage.columnar.ColumnStore`) and the aggregate
  provides array evaluators, step 1 and step 3 run as NumPy sweeps over
  the lo/hi endpoint arrays — classification via
  :func:`repro.predicates.batch.classify_masks`, refinement via
  :func:`repro.predicates.batch.restrict_endpoints` — and the "is this
  column exact?" check reads an O(1) dirty counter instead of scanning
  rows.  Step 2 is vector-native too: CHOOSE_REFRESH candidates are
  harvested straight from the column arrays
  (:func:`repro.storage.columnar.harvest_candidates`, backed by the
  store's epoch-cached sorted-width orderings) and solved without
  per-tuple Python objects whenever the cost function is vectorizable
  (:func:`repro.core.refresh.base.vector_cost_of`); rows materialize
  only for §8.2 rebatch metadata when a scheduler hook asks for it.
  ``QueryExecutor(columnar=False)`` forces the row-at-a-time pipeline
  and ``vector_planner=False`` just the object-based planner.

* **Classification once per query.**  :func:`classify` runs at most once
  per :meth:`QueryExecutor.execute` call (and never on the columnar
  path).  The initial bound, CHOOSE_REFRESH, and the final bound share
  one partition; after a refresh only the refreshed T? tuples are
  re-examined (a refresh can move tuples out of T?, never out of
  T+/T−, since a collapsed value is one of its bound's realizations).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Generator, Iterable, Mapping, Protocol, Sequence

from repro.core.aggregates import get_aggregate
from repro.core.answer import BoundedAnswer
from repro.core.bound import Bound, Trilean
from repro.core.constraints import (
    WIDTH_TOLERANCE,
    AbsolutePrecision,
    PrecisionConstraint,
    width_within,
)
from repro.core.refresh import CostFunc, RefreshPlan, get_choose_refresh, uniform_cost
from repro.errors import (
    ConstraintUnsatisfiableError,
    SourceUnavailableError,
    UnknownColumnError,
)
from repro.predicates.ast import Predicate, TruePredicate, columns_of
from repro.predicates.classify import Classification, classify, restrict_bound
from repro.predicates.eval import evaluate_exact, evaluate_trilean
from repro.storage.row import Row
from repro.storage.table import Table

try:  # Vectorized fast paths; the executor runs row-at-a-time without.
    from repro.predicates.batch import (
        ColumnarClassification,
        classification_from_masks,
        classify_masks,
        classify_report,
    )
except ImportError:  # pragma: no cover - numpy-less hosts
    classify_masks = None  # type: ignore[assignment]
    classify_report = None  # type: ignore[assignment]

__all__ = [
    "WIDTH_TOLERANCE",
    "RefreshProvider",
    "NullRefreshProvider",
    "PlannedRefresh",
    "RefreshHook",
    "QueryExecutor",
    "execute_query",
    "drive_steps",
]

# WIDTH_TOLERANCE / width_within (re-exported from repro.core.constraints)
# govern both the step-1 early exit and the step-3 guarantee check, so the
# two can never disagree about whether a width satisfies the constraint.


class RefreshProvider(Protocol):
    """Collapses cached bounds to exact master values on request."""

    def refresh(self, table: Table, tids: Iterable[int]) -> None:
        """Refresh the given tuples of ``table`` in place.

        After the call, every bounded column of each named tuple must hold
        an exact value (zero-width bound or plain number), and that value
        must lie inside the previously cached bound — TRAPP's core
        invariant (a bound always contains the master value).  The
        executor's incremental post-refresh reclassification relies on
        it: a collapse inside the old bound can move tuples out of T?,
        never out of T+/T−.
        """
        ...


class NullRefreshProvider:
    """A provider that can never refresh (pure cached-data querying).

    Useful for the "imprecise mode" extreme and for tests; the executor
    raises :class:`ConstraintUnsatisfiableError` if a refresh is required.
    """

    def refresh(self, table: Table, tids: Iterable[int]) -> None:
        tids = list(tids)
        if tids:
            raise ConstraintUnsatisfiableError(
                f"query requires refreshing tuples {sorted(tids)} but no "
                "refresh provider is connected"
            )


@dataclass(slots=True)
class _PreparedPredicate:
    """A predicate analyzed against a table's schema."""

    predicate: Predicate
    touches_bounded: bool


@dataclass(slots=True)
class PlannedRefresh:
    """A refresh the optimizer chose, surfaced before it is applied.

    This is what :meth:`QueryExecutor.execute_steps` yields (and what a
    ``refresh_hook`` receives): everything an external scheduler needs to
    merge the refresh with other in-flight queries' plans.  Whoever handles
    it must refresh *at least* the tuples of an equivalent plan and answer
    with the effective :class:`RefreshPlan` — the tuple ids actually
    refreshed on this query's behalf plus the cost attributed to it.

    ``rows``/``widths``/``budget_slack`` are the §8.2 rebatching metadata,
    present only when the aggregate's answer width is a linear function of
    the refreshed tuples' widths (SUM): ``widths`` maps each candidate
    tuple id to the answer width its refresh removes, and ``budget_slack``
    is how much width the chosen plan removes beyond what the constraint
    requires.  A scheduler may hand these straight to
    :func:`repro.extensions.batching.rebatch_plan` to swap expensive
    tuples for cheap same-source ones without violating the constraint.
    """

    table: Table
    plan: RefreshPlan
    max_width: float
    aggregate: str
    rows: Sequence[Row] | None = None
    widths: Mapping[int, float] | None = None
    budget_slack: float | None = None

    @property
    def can_rebatch(self) -> bool:
        return self.rows is not None and self.widths is not None


#: Intercepts a planned refresh.  The hook must apply the refreshes itself
#: (e.g. through a batching scheduler) and return the effective plan; a
#: ``None`` return means "applied exactly as requested".
RefreshHook = Callable[[PlannedRefresh], "RefreshPlan | None"]

#: Type of the generator returned by :meth:`QueryExecutor.execute_steps`.
ExecutionSteps = Generator[PlannedRefresh, RefreshPlan, BoundedAnswer]


def drive_steps(steps: ExecutionSteps, refresher: RefreshProvider) -> BoundedAnswer:
    """Serially drive an execution-steps generator to its answer.

    The reference driver for every generator speaking the
    :class:`PlannedRefresh` protocol (the executor's, the §7 join
    heuristic's, the §8.1 extension generators'): each planned refresh is
    applied immediately through ``refresher`` and echoed back as the
    effective plan — exactly what a hookless :meth:`QueryExecutor.execute`
    does, so serial answers are the fixed point concurrent drivers are
    tested against.
    """
    try:
        request = next(steps)
        while True:
            refresher.refresh(request.table, request.plan.tids)
            request = steps.send(request.plan)
    except StopIteration as stop:
        return stop.value


class QueryExecutor:
    """Executes bounded aggregation queries against one cached table."""

    def __init__(
        self,
        refresher: RefreshProvider | None = None,
        epsilon: float | None = None,
        force_exact: bool = False,
        refine_bounds: bool = True,
        columnar: bool = True,
        refresh_hook: RefreshHook | None = None,
        vector_planner: bool = True,
    ) -> None:
        self.refresher = refresher if refresher is not None else NullRefreshProvider()
        self.epsilon = epsilon
        self.force_exact = force_exact
        self.refine_bounds = refine_bounds
        #: Use the table's columnar mirror when available.  ``False``
        #: forces the row-at-a-time reference pipeline (the two are
        #: equivalence-tested property-style).
        self.columnar = columnar
        #: When set, planned refreshes are handed to this hook instead of
        #: ``refresher.refresh`` — the entry point for schedulers that
        #: batch refreshes across queries.  ``None`` keeps the classic
        #: apply-immediately behavior.
        self.refresh_hook = refresh_hook
        #: Run CHOOSE_REFRESH over candidate vectors harvested from the
        #: columnar mirror (no per-tuple KnapsackItem/Row objects) when
        #: the chooser and cost function support it.  ``False`` forces
        #: the object-based planner — the pre-vectorization reference
        #: path, kept for equivalence tests and benchmarks.
        self.vector_planner = vector_planner

    # ------------------------------------------------------------------
    def execute(
        self,
        table: Table,
        aggregate: str,
        column: str | None,
        constraint: PrecisionConstraint | float,
        predicate: Predicate | None = None,
        cost: CostFunc = uniform_cost,
    ) -> BoundedAnswer:
        """Run the three-step pipeline and return a guaranteed answer."""
        steps = self.execute_steps(
            table, aggregate, column, constraint, predicate, cost,
            # Building per-tuple rebatch metadata costs a row sweep; only
            # a hook (an external scheduler) ever reads it.
            rebatch_metadata=self.refresh_hook is not None,
        )
        try:
            request = next(steps)
            while True:
                request = steps.send(self._apply_refresh(request))
        except StopIteration as stop:
            return stop.value

    def execute_steps(
        self,
        table: Table,
        aggregate: str,
        column: str | None,
        constraint: PrecisionConstraint | float,
        predicate: Predicate | None = None,
        cost: CostFunc = uniform_cost,
        rebatch_metadata: bool = True,
    ) -> ExecutionSteps:
        """The three-step pipeline as a resumable generator.

        Yields a :class:`PlannedRefresh` whenever step 2 decides a refresh
        is needed, suspending the query at exactly the point where the
        paper's architecture contacts the sources.  The driver (a plain
        :meth:`execute` call, or a cross-query scheduler) applies the
        refresh however it likes and sends back the effective
        :class:`RefreshPlan`; the generator then runs step 3 and returns
        the guaranteed :class:`BoundedAnswer` via ``StopIteration.value``.
        """
        if isinstance(constraint, (int, float)):
            constraint = AbsolutePrecision(float(constraint))
        predicate = predicate if predicate is not None else TruePredicate()
        prepared = self._prepare(table, predicate)
        spec = get_aggregate(aggregate)
        if spec.needs_column and column is None:
            raise UnknownColumnError("<missing>", table.name)

        if not prepared.touches_bounded:
            return (
                yield from self._execute_unclassified(
                    table, spec, column, constraint, prepared, cost,
                    rebatch_metadata,
                )
            )
        if self._columnar_classified_ok(table, spec):
            return (
                yield from self._execute_columnar_classified(
                    table, spec, column, constraint, prepared, cost,
                    rebatch_metadata,
                )
            )
        return (
            yield from self._execute_row_classified(
                table, spec, column, constraint, prepared, cost,
                rebatch_metadata,
            )
        )

    def _apply_refresh(self, request: PlannedRefresh) -> RefreshPlan:
        """Default driver for a planned refresh: hook, else apply now."""
        if self.refresh_hook is not None:
            outcome = self.refresh_hook(request)
            return outcome if outcome is not None else request.plan
        self.refresher.refresh(request.table, request.plan.tids)
        return request.plan

    # ------------------------------------------------------------------
    # Regime selection helpers
    # ------------------------------------------------------------------
    def _columnar_store(self, table: Table):
        return table.columns if self.columnar else None

    def _columnar_classified_ok(self, table: Table, spec) -> bool:
        return (
            classify_masks is not None
            and self._columnar_store(table) is not None
            and hasattr(spec, "bound_with_classification_columnar")
        )

    # ------------------------------------------------------------------
    # §5 regime: no bounded-column predicate
    # ------------------------------------------------------------------
    def _execute_unclassified(
        self,
        table: Table,
        spec,
        column: str | None,
        constraint: PrecisionConstraint,
        prepared: _PreparedPredicate,
        cost: CostFunc,
        rebatch_metadata: bool,
    ) -> BoundedAnswer:
        store = self._columnar_store(table)
        use_columnar = (
            store is not None
            and isinstance(prepared.predicate, TruePredicate)
            and hasattr(spec, "bound_without_predicate_columnar")
        )
        rows: list[Row] | None = None
        if use_columnar:
            initial = spec.bound_without_predicate_columnar(store, column)
        else:
            rows = self._rows_no_predicate(table, prepared)
            initial = spec.bound_without_predicate(rows, column)

        max_width = constraint.resolve(initial)
        if width_within(initial.width, max_width):
            return BoundedAnswer(bound=initial, initial_bound=initial)

        chooser = self._chooser(spec)
        plan = None
        if (
            use_columnar
            and self.vector_planner
            and hasattr(chooser, "without_predicate_columnar")
        ):
            vectorized = chooser.without_predicate_columnar(
                store, column, max_width, cost
            )
            if vectorized is not None:
                plan, candidates = vectorized
                planned = self._planned_vector(
                    table, spec, plan, max_width, initial, candidates,
                    column, rebatch_metadata,
                )
        if plan is None:
            if rows is None:
                rows = self._rows_no_predicate(table, prepared)
            kwargs = {}
            if spec.name == "SUM" and column is not None and isinstance(
                prepared.predicate, TruePredicate
            ):
                # The §5.2 uniform-cost greedy walks the table's width
                # endpoint index instead of sorting, when one exists
                # (the row path's counterpart of the columnar planner
                # cache; index keys ascend because every mutation goes
                # through Table.update_value).
                index = table.indexes.get(f"{column}__width")
                if index is not None:
                    kwargs["width_order"] = index.ascending()
            plan = chooser.without_predicate(rows, column, max_width, cost, **kwargs)
            planned = self._planned_unclassified(
                table, spec, plan, max_width, initial, rows, column,
                rebatch_metadata,
            )
        plan = yield planned

        # Membership is fixed (the predicate saw only exact columns), so
        # the filtered row set — and the columnar whole-table sweep —
        # remain valid; only the refreshed values changed in place.
        if use_columnar:
            final = spec.bound_without_predicate_columnar(store, column)
        else:
            final = spec.bound_without_predicate(rows, column)
        return self._finish(final, max_width, plan, initial)

    # ------------------------------------------------------------------
    # §6 regime, columnar: masks + array aggregation, rows only on refresh
    # ------------------------------------------------------------------
    def _execute_columnar_classified(
        self,
        table: Table,
        spec,
        column: str | None,
        constraint: PrecisionConstraint,
        prepared: _PreparedPredicate,
        cost: CostFunc,
        rebatch_metadata: bool,
    ) -> BoundedAnswer:
        store = table.columns
        refine = self.refine_bounds and column is not None
        # The index-backed route (endpoint windows) and the dense sweep
        # are bit-identical; the report additionally carries the sorted
        # T+/T? positions so harvest and answer assembly stay O(k), plus
        # the window fraction the service telemeters.
        report = classify_report(store, prepared.predicate)
        window_fraction = report.window_fraction
        positions = report.positions
        # With index positions in hand, assembly gathers O(k) arrays and
        # the dense masks are never widened; ``report.certain`` below is
        # a lazy property, touched only on mask-needing fallbacks.
        cc = ColumnarClassification.from_masks(
            store,
            None if positions is not None else report.certain,
            None if positions is not None else report.possible,
            column, prepared.predicate, refine, positions=positions,
        )
        initial = spec.bound_with_classification_columnar(cc, column)

        max_width = constraint.resolve(initial)
        if width_within(initial.width, max_width):
            return BoundedAnswer(
                bound=initial,
                initial_bound=initial,
                index_window_fraction=window_fraction,
            )

        chooser = self._chooser(spec)
        plan = None
        if self.vector_planner and hasattr(chooser, "with_classification_columnar"):
            lazy = positions is not None and getattr(chooser, "uses_positions", False)
            vectorized = chooser.with_classification_columnar(
                store,
                None if lazy else report.certain,
                None if lazy else report.possible,
                column, max_width, cost,
                predicate=prepared.predicate if refine else None,
                positions=positions,
            )
            if vectorized is not None:
                plan, candidates = vectorized
                planned = self._planned_vector(
                    table, spec, plan, max_width, initial, candidates,
                    column, rebatch_metadata,
                )
        if plan is None:
            classification = classification_from_masks(
                table.rows(), report.certain, report.possible
            )
            refined = self._refined_classification(classification, prepared, column)
            plan = chooser.with_classification(refined, column, max_width, cost)
            planned = self._planned_classified(
                table, spec, plan, max_width, initial, refined, column,
                rebatch_metadata,
            )
        plan = yield planned

        report = classify_report(store, prepared.predicate)
        positions = report.positions
        cc = ColumnarClassification.from_masks(
            store,
            None if positions is not None else report.certain,
            None if positions is not None else report.possible,
            column, prepared.predicate, refine, positions=positions,
        )
        final = spec.bound_with_classification_columnar(cc, column)
        answer = self._finish(final, max_width, plan, initial)
        if window_fraction is not None:
            answer = replace(answer, index_window_fraction=window_fraction)
        return answer

    # ------------------------------------------------------------------
    # §6 regime, row-at-a-time reference path: classify exactly once
    # ------------------------------------------------------------------
    def _execute_row_classified(
        self,
        table: Table,
        spec,
        column: str | None,
        constraint: PrecisionConstraint,
        prepared: _PreparedPredicate,
        cost: CostFunc,
        rebatch_metadata: bool,
    ) -> BoundedAnswer:
        classification = classify(table.rows(), prepared.predicate)
        refined = self._refined_classification(classification, prepared, column)
        initial = spec.bound_with_classification(refined, column)

        max_width = constraint.resolve(initial)
        if width_within(initial.width, max_width):
            return BoundedAnswer(bound=initial, initial_bound=initial)

        plan = self._chooser(spec).with_classification(
            refined, column, max_width, cost
        )
        plan = yield self._planned_classified(
            table, spec, plan, max_width, initial, refined, column,
            rebatch_metadata,
        )

        updated = self._reclassify_refreshed(classification, plan.tids, prepared)
        refined = self._refined_classification(updated, prepared, column)
        final = spec.bound_with_classification(refined, column)
        return self._finish(final, max_width, plan, initial)

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def _chooser(self, spec):
        return get_choose_refresh(
            spec.name, epsilon=self.epsilon, force_exact=self.force_exact
        )

    def _planned_unclassified(
        self,
        table: Table,
        spec,
        plan: RefreshPlan,
        max_width: float,
        initial: Bound,
        rows: Sequence[Row],
        column: str | None,
        rebatch_metadata: bool,
    ) -> PlannedRefresh:
        if not rebatch_metadata or spec.name != "SUM" or column is None:
            return PlannedRefresh(table, plan, max_width, spec.name)
        widths = {row.tid: row.bound(column).width for row in rows}
        return self._with_slack(table, spec, plan, max_width, initial, rows, widths)

    def _planned_classified(
        self,
        table: Table,
        spec,
        plan: RefreshPlan,
        max_width: float,
        initial: Bound,
        refined: Classification,
        column: str | None,
        rebatch_metadata: bool,
    ) -> PlannedRefresh:
        if not rebatch_metadata or spec.name != "SUM" or column is None:
            return PlannedRefresh(table, plan, max_width, spec.name)
        # §6.2 weights: refreshing a T+ tuple removes its full width;
        # refreshing a T? tuple removes its bound extended to zero (the
        # tuple may turn out to fail the predicate and contribute nothing).
        rows = list(refined.plus) + list(refined.maybe)
        widths = {row.tid: row.bound(column).width for row in refined.plus}
        widths.update(
            {
                row.tid: row.bound(column).extend_to_zero().width
                for row in refined.maybe
            }
        )
        return self._with_slack(table, spec, plan, max_width, initial, rows, widths)

    def _planned_vector(
        self,
        table: Table,
        spec,
        plan: RefreshPlan,
        max_width: float,
        initial: Bound,
        candidates,
        column: str | None,
        rebatch_metadata: bool,
    ) -> PlannedRefresh:
        """Rebatch metadata from harvested candidate vectors.

        The vector planner never materializes rows; when a scheduler hook
        needs §8.2 metadata the candidate vectors already hold every
        (tid, width) pair, so rows are resolved by id — one dict lookup
        each — instead of re-running classification and refinement.
        """
        if (
            not rebatch_metadata
            or spec.name != "SUM"
            or column is None
            or candidates is None
        ):
            return PlannedRefresh(table, plan, max_width, spec.name)
        widths = {
            int(tid): float(width)
            for tid, width in zip(candidates.tids, candidates.widths)
        }
        rows = [table.row(tid) for tid in widths]
        return self._with_slack(table, spec, plan, max_width, initial, rows, widths)

    @staticmethod
    def _with_slack(
        table: Table,
        spec,
        plan: RefreshPlan,
        max_width: float,
        initial: Bound,
        rows: Sequence[Row],
        widths: dict[int, float],
    ) -> PlannedRefresh:
        # SUM's final width is the initial width minus the widths removed
        # by the refreshed tuples, so the plan's slack over the constraint
        # is exactly the width a rebatcher may give back.
        removed = sum(widths.get(tid, 0.0) for tid in plan.tids)
        required = initial.width - max_width
        slack = max(0.0, removed - required)
        return PlannedRefresh(
            table,
            plan,
            max_width,
            spec.name,
            rows=rows,
            widths=widths,
            budget_slack=slack,
        )

    @staticmethod
    def _finish(
        final: Bound, max_width: float, plan: RefreshPlan, initial: Bound
    ) -> BoundedAnswer:
        if not width_within(final.width, max_width):
            if plan.unreached:
                # Bounded degradation (the paper's availability story):
                # some planned tuples' sources were unreachable, so the
                # constraint could not be met — but the recomputed bound
                # still contains the true value.  Serve it, marked
                # degraded, unless the constraint demands exactness that
                # only the dead sources hold.
                if max_width <= 0.0:
                    raise SourceUnavailableError(
                        f"constraint WITHIN {max_width:g} requires exact values "
                        f"held only by unreachable sources "
                        f"{', '.join(plan.failed_sources) or '<unknown>'}",
                        sources=plan.failed_sources,
                    )
                return BoundedAnswer(
                    bound=final,
                    refreshed=plan.tids,
                    refresh_cost=plan.total_cost,
                    initial_bound=initial,
                    degraded=True,
                    unreachable_sources=plan.failed_sources,
                )
            raise ConstraintUnsatisfiableError(
                f"post-refresh answer {final} (width {final.width:g}) violates "
                f"constraint {max_width:g}; this indicates an optimizer bug"
            )
        return BoundedAnswer(
            bound=final,
            refreshed=plan.tids,
            refresh_cost=plan.total_cost,
            initial_bound=initial,
            unreachable_sources=plan.failed_sources,
        )

    def _prepare(self, table: Table, predicate: Predicate) -> _PreparedPredicate:
        touched = columns_of(predicate)
        for name in touched:
            table.schema.column(name)  # raises on unknown columns
        touches_bounded = any(
            table.schema[name].is_bounded and not self._column_exact(table, name)
            for name in touched
        )
        return _PreparedPredicate(predicate, touches_bounded)

    @staticmethod
    def _column_exact(table: Table, column: str) -> bool:
        """True when every current value in the column is exactly known.

        O(1) when the table has a columnar mirror (dirty counters
        maintained on writes); a row scan otherwise.
        """
        return table.column_exact(column)

    # ------------------------------------------------------------------
    def _rows_no_predicate(
        self, table: Table, prepared: _PreparedPredicate
    ) -> list[Row]:
        """The §5 regime: filter rows two-valued over exact columns."""
        if isinstance(prepared.predicate, TruePredicate):
            return table.rows()
        return [
            row for row in table.rows() if evaluate_exact(prepared.predicate, row)
        ]

    def _refined_classification(
        self,
        classification: Classification,
        prepared: _PreparedPredicate,
        column: str | None,
    ) -> Classification:
        """Apply the Appendix D bound-shrinking refinement to T? tuples."""
        if not self.refine_bounds or column is None:
            return classification
        refined_maybe: list[Row] = []
        for row in classification.maybe:
            original = row.bound(column)
            shrunk = restrict_bound(original, prepared.predicate, column)
            if shrunk != original:
                clone = row.copy()
                clone.set(column, shrunk)
                refined_maybe.append(clone)
            else:
                refined_maybe.append(row)
        return Classification(
            plus=classification.plus,
            maybe=refined_maybe,
            minus=classification.minus,
        )

    def _reclassify_refreshed(
        self,
        classification: Classification,
        refreshed: Iterable[int],
        prepared: _PreparedPredicate,
    ) -> Classification:
        """Update a partition after the named tuples were refreshed.

        A refresh collapses bounds onto values inside them, so T+ and T−
        memberships survive; only refreshed T? tuples can become decided.
        Re-examining just those keeps :func:`classify` at one invocation
        per query.
        """
        refreshed = set(refreshed)
        if not refreshed:
            return classification
        plus = list(classification.plus)
        maybe: list[Row] = []
        minus = list(classification.minus)
        for row in classification.maybe:
            if row.tid not in refreshed:
                maybe.append(row)
                continue
            verdict = evaluate_trilean(prepared.predicate, row)
            if verdict is Trilean.TRUE:
                plus.append(row)
            elif verdict is Trilean.FALSE:
                minus.append(row)
            else:  # provider left a bound wide; stay sound, keep it in T?
                maybe.append(row)
        return Classification(plus=plus, maybe=maybe, minus=minus)


def execute_query(
    table: Table,
    aggregate: str,
    column: str | None,
    constraint: PrecisionConstraint | float,
    predicate: Predicate | None = None,
    cost: CostFunc = uniform_cost,
    refresher: RefreshProvider | None = None,
    epsilon: float | None = None,
    force_exact: bool = False,
    refine_bounds: bool = True,
    columnar: bool = True,
    refresh_hook: RefreshHook | None = None,
    vector_planner: bool = True,
) -> BoundedAnswer:
    """One-shot convenience wrapper around :class:`QueryExecutor`.

    Every executor option — including ``force_exact`` and
    ``refine_bounds`` — is forwarded, so the wrapper answers exactly as a
    hand-built executor would.
    """
    executor = QueryExecutor(
        refresher=refresher,
        epsilon=epsilon,
        force_exact=force_exact,
        refine_bounds=refine_bounds,
        columnar=columnar,
        refresh_hook=refresh_hook,
        vector_planner=vector_planner,
    )
    return executor.execute(table, aggregate, column, constraint, predicate, cost)
