"""Precision constraints attached to TRAPP/AG queries.

A query's precision constraint limits the width of the bounded answer
``[L_A, H_A]``.  The paper's primary form is an *absolute* constraint: a
non-negative constant ``R`` with the requirement ``H_A - L_A <= R``
(``WITHIN R`` in the query syntax).  Section 8.1 sketches *relative*
constraints (``2 * |A| * P`` for a fraction ``P``), which we implement via
the conservative reduction the paper describes: derive an absolute ``R``
from the first-pass bounded answer computed over cached data alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.bound import Bound
from repro.errors import PrecisionConstraintError

__all__ = [
    "WIDTH_TOLERANCE",
    "width_within",
    "PrecisionConstraint",
    "AbsolutePrecision",
    "RelativePrecision",
    "EXACT",
    "UNCONSTRAINED",
]

#: Relative slack applied to every width-vs-constraint comparison,
#: absorbing the floating-point noise of endpoint accumulation.  One
#: shared tolerance keeps the executor's early-exit and guarantee
#: checks, answer/constraint satisfaction predicates, and the extension
#: pipelines from ever disagreeing about whether a width meets a budget.
WIDTH_TOLERANCE = 1e-6


def width_within(width: float, max_width: float) -> bool:
    """True when ``width`` satisfies the budget up to float slack.

    The slack scales with the budget (``WIDTH_TOLERANCE * max_width``):
    a microscopic budget is not drowned by an absolute epsilon, while a
    Figure 6-scale budget tolerates the accumulation noise of summing
    thousands of endpoints.  A zero budget demands an exactly zero width
    — which refreshed (exact) tuples produce exactly.

    Known tradeoff: the slack tracks the budget, not the data magnitude,
    so a sub-1 budget over values many orders of magnitude larger can
    trip the executor's post-refresh guarantee check on pure summation
    noise.  That failure is loud (``ConstraintUnsatisfiableError``),
    whereas an absolute slack silently under-enforces small budgets —
    the loud direction is the one we keep.
    """
    return width <= max_width + WIDTH_TOLERANCE * abs(max_width)


@dataclass(frozen=True, slots=True)
class PrecisionConstraint:
    """Base class; subclasses resolve to an absolute width budget."""

    def resolve(self, first_pass: Bound) -> float:
        """Return the absolute maximum answer width ``R``.

        ``first_pass`` is the bounded answer computed from cached data only;
        absolute constraints ignore it, relative constraints use it to derive
        a conservative absolute budget.
        """
        raise NotImplementedError

    def satisfied_by(self, answer: Bound, first_pass: Bound | None = None) -> bool:
        """True iff ``answer`` meets this constraint.

        For relative constraints, the budget is evaluated against the final
        answer itself (the guarantee ``width <= 2 * |A| * P`` holds whenever
        ``width <= 2 * min|a| * P`` over the answer interval).
        """
        reference = first_pass if first_pass is not None else answer
        return width_within(answer.width, self.resolve(reference))


@dataclass(frozen=True, slots=True)
class AbsolutePrecision(PrecisionConstraint):
    """``WITHIN R``: the answer interval must be at most ``R`` wide."""

    width: float

    def __post_init__(self) -> None:
        if math.isnan(self.width) or self.width < 0:
            raise PrecisionConstraintError(
                f"precision width must be a non-negative real, got {self.width}"
            )

    def resolve(self, first_pass: Bound) -> float:
        return self.width

    def __str__(self) -> str:
        if math.isinf(self.width):
            return "WITHIN inf"
        return f"WITHIN {self.width:g}"


@dataclass(frozen=True, slots=True)
class RelativePrecision(PrecisionConstraint):
    """Relative constraint ``P`` from paper §8.1.

    Denotes the absolute constraint ``2 * |A| * P`` where ``A`` is the true
    answer.  Since ``A`` is unknown in advance, we resolve conservatively
    using the smallest possible ``|A|`` consistent with the first-pass
    bounded answer, guaranteeing ``R <= 2 * |A| * P`` for the actual ``A``.
    """

    fraction: float

    def __post_init__(self) -> None:
        if math.isnan(self.fraction) or self.fraction < 0:
            raise PrecisionConstraintError(
                f"relative precision must be a non-negative real, got {self.fraction}"
            )

    def resolve(self, first_pass: Bound) -> float:
        if first_pass.contains(0.0):
            # |A| could be arbitrarily small: only an exact answer is safe.
            return 0.0
        min_abs = min(abs(first_pass.lo), abs(first_pass.hi))
        if math.isinf(min_abs):
            return math.inf
        return 2.0 * min_abs * self.fraction

    def __str__(self) -> str:
        return f"WITHIN {self.fraction:.2%} (relative)"


#: Demand an exact answer (``R = 0``): the "precise mode" extreme.
EXACT = AbsolutePrecision(0.0)

#: No constraint (``R = inf``): the "imprecise mode" extreme.
UNCONSTRAINED = AbsolutePrecision(math.inf)
