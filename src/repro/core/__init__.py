"""TRAPP/AG core: bounds, constraints, aggregates, optimizers, executor."""

from repro.core.answer import BoundedAnswer
from repro.core.bound import Bound, Trilean, exact, hull, intersect_all
from repro.core.constraints import (
    EXACT,
    UNCONSTRAINED,
    AbsolutePrecision,
    PrecisionConstraint,
    RelativePrecision,
)
from repro.core.executor import (
    NullRefreshProvider,
    QueryExecutor,
    RefreshProvider,
    execute_query,
)

__all__ = [
    "Bound",
    "Trilean",
    "exact",
    "hull",
    "intersect_all",
    "BoundedAnswer",
    "PrecisionConstraint",
    "AbsolutePrecision",
    "RelativePrecision",
    "EXACT",
    "UNCONSTRAINED",
    "QueryExecutor",
    "RefreshProvider",
    "NullRefreshProvider",
    "execute_query",
]
