"""Delayed insert/delete propagation with bounded cardinality (§8.3).

The base architecture propagates every insertion and deletion to caches
immediately, which keeps COUNT exact but makes churn expensive.  §8.3
proposes bounding the *discrepancy* instead: a source may buffer up to
``max_pending`` membership changes per table before flushing them, and the
cache computes bounded answers that account for the pending-churn window.

:class:`ChurnBuffer` is the source-side buffer; :class:`churn_adjusted`
widens a cached aggregate bound to cover every buffered-churn possibility:

* COUNT gains ``[-pending_deletes, +pending_inserts]``;
* SUM gains the most extreme contributions unpropagated rows could make,
  which requires a declared per-table value domain ``[value_lo, value_hi]``
  (unknown rows must come from somewhere bounded — e.g. latency is known
  to lie in [0, 1000] ms);
* MIN/MAX extend toward the domain edge on the insert side only (deletes
  of unknown rows cannot make a cached MIN smaller, but they can remove
  the current minimum, pushing the true MIN up to the domain's edge —
  covered by the deletion term);
* AVG recombines the adjusted SUM and COUNT loosely.

This module trades churn traffic for answer width — exactly the knob
§8.3 describes — and the tests verify containment under arbitrary
buffered churn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.aggregates.average import loose_avg_bound
from repro.core.bound import Bound
from repro.errors import TrappError

__all__ = ["PendingChurn", "ChurnBuffer", "churn_adjusted"]


@dataclass(frozen=True, slots=True)
class PendingChurn:
    """How many membership changes a cache has not yet heard about."""

    inserts: int = 0
    deletes: int = 0

    @property
    def total(self) -> int:
        return self.inserts + self.deletes


@dataclass(slots=True)
class ChurnBuffer:
    """Source-side buffer of unpropagated insertions/deletions.

    ``flush_callback`` receives the buffered changes when the buffer
    exceeds ``max_pending`` (or on explicit :meth:`flush`); in the full
    system it would send ``CardinalityChange`` messages.
    """

    max_pending: int = 10
    flush_callback: Callable[[list], None] | None = None
    _pending: list = field(init=False, default_factory=list)
    flushes: int = field(init=False, default=0)

    def record_insert(self, tid: int, values: dict) -> None:
        self._pending.append(("insert", tid, values))
        self._maybe_flush()

    def record_delete(self, tid: int) -> None:
        self._pending.append(("delete", tid, None))
        self._maybe_flush()

    def pending(self) -> PendingChurn:
        inserts = sum(1 for kind, _, _ in self._pending if kind == "insert")
        return PendingChurn(inserts=inserts, deletes=len(self._pending) - inserts)

    def flush(self) -> list:
        drained = list(self._pending)
        self._pending.clear()
        if drained:
            self.flushes += 1
            if self.flush_callback is not None:
                self.flush_callback(drained)
        return drained

    def _maybe_flush(self) -> None:
        if len(self._pending) > self.max_pending:
            self.flush()


def churn_adjusted(
    aggregate: str,
    cached_bound: Bound,
    churn: PendingChurn,
    cached_count: int,
    value_domain: Bound,
) -> Bound:
    """Widen ``cached_bound`` to cover every buffered-churn possibility.

    ``cached_bound`` is the bounded answer over the cache's current rows;
    ``cached_count`` is how many rows the cache currently holds (after the
    predicate, if any — every pending change is conservatively assumed to
    pass it); ``value_domain`` bounds the aggregation column's legal
    values.
    """
    if churn.total == 0:
        return cached_bound
    if not value_domain.is_finite:
        raise TrappError(
            "delayed churn needs a finite value domain for the aggregation column"
        )
    name = aggregate.upper()
    ins, dels = churn.inserts, churn.deletes

    if name == "COUNT":
        return Bound(cached_bound.lo - dels, cached_bound.hi + ins)

    if name == "SUM":
        lo = cached_bound.lo
        hi = cached_bound.hi
        # Unseen inserts contribute anywhere in the domain...
        lo += ins * min(0.0, value_domain.lo)
        hi += ins * max(0.0, value_domain.hi)
        # ...and unseen deletes remove rows whose cached contribution we
        # cannot identify; removing a row changes the sum by -value.
        lo -= dels * max(0.0, value_domain.hi)
        hi -= dels * min(0.0, value_domain.lo)
        return Bound(lo, hi)

    if name == "MIN":
        lo = min(cached_bound.lo, value_domain.lo) if ins else cached_bound.lo
        # Deletes may remove every cached row at the minimum; the true MIN
        # can rise as far as the domain allows.
        hi = value_domain.hi if dels else cached_bound.hi
        return Bound(min(lo, hi), max(lo, hi))

    if name == "MAX":
        hi = max(cached_bound.hi, value_domain.hi) if ins else cached_bound.hi
        lo = value_domain.lo if dels else cached_bound.lo
        return Bound(min(lo, hi), max(lo, hi))

    if name == "AVG":
        # Recombine via the loose SUM/COUNT route over the adjusted parts.
        sum_est = Bound(
            cached_bound.lo * max(cached_count, 1),
            cached_bound.hi * max(cached_count, 1),
        )
        adj_sum = churn_adjusted("SUM", sum_est, churn, cached_count, value_domain)
        adj_count = churn_adjusted(
            "COUNT", Bound.exact(cached_count), churn, cached_count, value_domain
        )
        adj_count = Bound(max(0.0, adj_count.lo), max(0.0, adj_count.hi))
        loose = loose_avg_bound(adj_sum, adj_count)
        # The average can never leave the value domain.
        lo = max(loose.lo, value_domain.lo)
        hi = min(loose.hi, value_domain.hi)
        return Bound(min(lo, hi), max(lo, hi))

    raise TrappError(f"churn adjustment not defined for aggregate {aggregate!r}")
