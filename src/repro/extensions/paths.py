"""Bounded shortest paths — beyond aggregation queries (paper §8.1).

The paper's own example of extending TRAPP past SQL aggregates: "suppose
we wish to find the lowest latency path in the network from node N_i to
node N_j.  A precision constraint might require that the value
corresponding to the answer returned by TRAPP (i.e., the latency of the
selected path) is within some distance from the value of the precise best
answer."

With every link latency cached as a bound ``[L_e, H_e]``:

* the **optimistic** distance ``d_L`` (Dijkstra over lower endpoints) is a
  lower bound on the true shortest-path latency;
* the **pessimistic** distance ``d_H`` (Dijkstra over upper endpoints) is
  an upper bound — the true best path costs at most what the best
  pessimistic path costs pessimistically;

so ``[d_L, d_H]`` is a guaranteed bounded answer, and the path achieving
``d_H`` is a concrete route whose true latency provably sits within the
bound.  The §8.1 constraint form is satisfied once ``d_H - d_L <= R``:
the returned route's latency is within ``R`` of the precise optimum.

CHOOSE_REFRESH follows the iterative pattern: while the bound is too wide,
refresh the widest-bound link on the current *optimistic* path (the place
where optimism and pessimism can disagree), recompute, repeat.  Tests
verify the guarantee against exhaustively realized networks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.constraints import width_within
from repro.core.bound import Bound
from repro.core.executor import RefreshProvider
from repro.errors import ConstraintUnsatisfiableError, TrappError
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = ["BoundedPathAnswer", "bounded_shortest_path", "PathQueryExecutor"]


@dataclass(frozen=True, slots=True)
class BoundedPathAnswer:
    """A guaranteed interval on the optimal path latency plus a witness."""

    #: Interval containing the precise shortest-path latency.
    bound: Bound
    #: A concrete route (node sequence) whose true latency lies in `bound`.
    route: tuple[int, ...]
    #: Link tuple ids refreshed while answering.
    refreshed: frozenset[int] = frozenset()
    refresh_cost: float = 0.0

    @property
    def width(self) -> float:
        return self.bound.width


def _dijkstra(
    adjacency: dict[int, list[tuple[int, int, float]]],
    source: int,
    target: int,
) -> tuple[float, tuple[int, ...], tuple[int, ...]]:
    """Distance, node route, and link-tid route from source to target.

    ``adjacency[u]`` holds ``(v, tid, weight)`` triples.  Returns
    ``(inf, (), ())`` when the target is unreachable.
    """
    distances: dict[int, float] = {source: 0.0}
    previous: dict[int, tuple[int, int]] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    visited: set[int] = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for neighbor, tid, weight in adjacency.get(node, ()):
            candidate = dist + weight
            if candidate < distances.get(neighbor, math.inf):
                distances[neighbor] = candidate
                previous[neighbor] = (node, tid)
                heapq.heappush(heap, (candidate, neighbor))
    if target not in distances:
        return math.inf, (), ()
    route = [target]
    links = []
    node = target
    while node != source:
        parent, tid = previous[node]
        links.append(tid)
        route.append(parent)
        node = parent
    return distances[target], tuple(reversed(route)), tuple(reversed(links))


def _adjacency(
    table: Table,
    from_column: str,
    to_column: str,
    latency_column: str,
    endpoint: str,
) -> dict[int, list[tuple[int, int, float]]]:
    adjacency: dict[int, list[tuple[int, int, float]]] = {}
    for row in table.rows():
        bound = row.bound(latency_column)
        weight = bound.lo if endpoint == "lo" else bound.hi
        if weight < 0:
            raise TrappError(
                f"link #{row.tid} has negative possible latency {weight}; "
                "shortest paths require non-negative weights"
            )
        u = int(row.number(from_column))
        v = int(row.number(to_column))
        adjacency.setdefault(u, []).append((v, row.tid, weight))
    return adjacency


def bounded_shortest_path(
    table: Table,
    source: int,
    target: int,
    from_column: str = "from_node",
    to_column: str = "to_node",
    latency_column: str = "latency",
) -> BoundedPathAnswer:
    """The bounded answer ``[d_L, d_H]`` plus the pessimistic witness route."""
    lo_dist, _, _ = _dijkstra(
        _adjacency(table, from_column, to_column, latency_column, "lo"),
        source,
        target,
    )
    hi_dist, hi_route, _ = _dijkstra(
        _adjacency(table, from_column, to_column, latency_column, "hi"),
        source,
        target,
    )
    if math.isinf(lo_dist) or math.isinf(hi_dist):
        raise TrappError(f"no path from N{source} to N{target}")
    return BoundedPathAnswer(bound=Bound(lo_dist, hi_dist), route=hi_route)


class PathQueryExecutor:
    """Iteratively refreshes link latencies until the path bound meets R."""

    def __init__(
        self,
        refresher: RefreshProvider,
        cost: Callable[[Row], float] | None = None,
        from_column: str = "from_node",
        to_column: str = "to_node",
        latency_column: str = "latency",
    ) -> None:
        self.refresher = refresher
        self.cost = cost if cost is not None else (lambda row: 1.0)
        self.from_column = from_column
        self.to_column = to_column
        self.latency_column = latency_column

    def execute(
        self, table: Table, source: int, target: int, max_width: float
    ) -> BoundedPathAnswer:
        """Answer the lowest-latency-path query within ``max_width``.

        Refresh policy: the widest unrefreshed link on the current
        *optimistic* shortest path — the optimistic route is where a too
        rosy lower bound can hide, so collapsing its uncertainty either
        certifies it or reroutes optimism elsewhere.  Falls back to the
        pessimistic route's links when the optimistic path is exact, and
        terminates because every iteration refreshes a distinct link.
        """
        refreshed: set[int] = set()
        total_cost = 0.0
        for _ in range(len(table) + 1):
            answer = bounded_shortest_path(
                table, source, target,
                self.from_column, self.to_column, self.latency_column,
            )
            if width_within(answer.width, max_width):
                return BoundedPathAnswer(
                    bound=answer.bound,
                    route=answer.route,
                    refreshed=frozenset(refreshed),
                    refresh_cost=total_cost,
                )
            target_link = self._pick_link(table, source, target)
            if target_link is None:
                raise ConstraintUnsatisfiableError(
                    f"path bound {answer.bound} cannot be narrowed to "
                    f"{max_width:g}: all links are exact"
                )
            total_cost += self.cost(table.row(target_link))
            self.refresher.refresh(table, [target_link])
            refreshed.add(target_link)
        raise ConstraintUnsatisfiableError(
            "path refresh loop failed to converge; refresher is not "
            "collapsing link bounds"
        )

    def _pick_link(self, table: Table, source: int, target: int) -> int | None:
        _, _, lo_links = _dijkstra(
            _adjacency(table, self.from_column, self.to_column,
                       self.latency_column, "lo"),
            source,
            target,
        )
        _, _, hi_links = _dijkstra(
            _adjacency(table, self.from_column, self.to_column,
                       self.latency_column, "hi"),
            source,
            target,
        )
        for links in (lo_links, hi_links):
            candidates = [
                tid for tid in links
                if table.row(tid).bound(self.latency_column).width > 0
            ]
            if candidates:
                return max(
                    candidates,
                    key=lambda tid: table.row(tid).bound(self.latency_column).width,
                )
        return None
