"""MEDIAN as a first-class registered aggregate (paper §8.1 extension).

Importing this module registers ``MEDIAN`` with both the aggregate
registry and the CHOOSE_REFRESH dispatcher, so the three-step executor and
the SQL front-end (`SELECT MEDIAN(price) WITHIN 1 FROM stocks`) handle it
like the five standard aggregates.

Evaluation:

* **No predicate** — ``[median(L_i), median(H_i)]`` (see
  :func:`repro.extensions.median.bounded_median`).
* **With a predicate** — the contributing set ``S`` satisfies
  ``T+ ⊆ S ⊆ T+ ∪ T?``, and within any fixed ``S`` the realized median is
  monotone in each value, so the extremes are::

      lo = min over S of median(lows of S)
      hi = max over S of median(highs of S)

  Both optimizations are solved exactly by a prefix argument: to minimize
  the median, include T? lows in ascending order while the median drops;
  excluding any included low for a larger one can only raise it (mirror
  image for the maximum).

Refresh selection combines the membership rule (refresh every T? tuple the
budget cannot tolerate) with the no-predicate window rule from
:func:`repro.extensions.median.choose_refresh_median`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.constraints import width_within
from repro.core.aggregates.base import register
from repro.core.bound import Bound
from repro.core.refresh import register_choose_refresh
from repro.core.refresh.base import CostFunc, RefreshPlan, uniform_cost
from repro.errors import TrappError
from repro.extensions.median import bounded_median, choose_refresh_median, median_of
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = ["MedianAggregate", "MedianChooseRefresh", "MEDIAN", "CHOOSE_MEDIAN"]


def _extreme_median(
    base: list[float], optional: list[float], minimize: bool
) -> float:
    """Optimize ``median(base ∪ subset(optional))`` over subset choice.

    Prefix argument: by an exchange argument, some *prefix* of the optional
    values sorted toward the objective (ascending to minimize, descending
    to maximize) achieves the optimum — swapping any included value for a
    more extreme excluded one never hurts.  The lower-median convention
    makes the objective non-monotone in the prefix length (an odd/even
    index shift), so every prefix is evaluated rather than stopping at the
    first non-improvement.
    """
    if not base and not optional:
        raise TrappError("median of an empty collection is undefined")
    if not base:
        # S could be any nonempty subset; a singleton pins the median at
        # any single optional value, so the extreme is the extreme value.
        return min(optional) if minimize else max(optional)
    best = median_of(base)
    included = list(base)
    for value in sorted(optional, reverse=not minimize):
        included.append(value)
        candidate = median_of(included)
        if (candidate < best) if minimize else (candidate > best):
            best = candidate
    return best


class MedianAggregate:
    """Bounded MEDIAN (lower-median convention)."""

    name = "MEDIAN"
    needs_column = True

    def bound_without_predicate(
        self, rows: Sequence[Row], column: str | None
    ) -> Bound:
        if column is None:
            raise TrappError("MEDIAN requires an aggregation column")
        return bounded_median(rows, column)

    def bound_with_classification(
        self, classification: Classification, column: str | None
    ) -> Bound:
        if column is None:
            raise TrappError("MEDIAN requires an aggregation column")
        plus = classification.plus
        maybe = classification.maybe
        if not plus and not maybe:
            return Bound.unbounded()
        lo = _extreme_median(
            [row.bound(column).lo for row in plus],
            [row.bound(column).lo for row in maybe],
            minimize=True,
        )
        hi = _extreme_median(
            [row.bound(column).hi for row in plus],
            [row.bound(column).hi for row in maybe],
            minimize=False,
        )
        return Bound(lo, hi)


class MedianChooseRefresh:
    """Refresh selection for MEDIAN queries."""

    name = "MEDIAN"

    def without_predicate(
        self,
        rows: Sequence[Row],
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        if column is None:
            raise TrappError("MEDIAN CHOOSE_REFRESH requires an aggregation column")
        return choose_refresh_median(rows, column, max_width, cost)

    def with_classification(
        self,
        classification: Classification,
        column: str | None,
        max_width: float,
        cost: CostFunc = uniform_cost,
    ) -> RefreshPlan:
        """Membership + window rule.

        Refresh (a) every T? tuple — deciding membership exactly — and (b)
        every T+ ∪ T? tuple wider than the budget whose bound overlaps the
        current extreme-median window.  After (a), the contributing set is
        known; after (b), the spanning-lemma argument of
        :func:`choose_refresh_median` bounds the realized window by the
        budget for any realization.
        """
        if column is None:
            raise TrappError("MEDIAN CHOOSE_REFRESH requires an aggregation column")
        spec = MEDIAN
        window = spec.bound_with_classification(classification, column)
        if width_within(window.width, max_width):
            return RefreshPlan.empty()
        chosen: dict[int, Row] = {row.tid: row for row in classification.maybe}
        for row in classification.plus_or_maybe:
            bound = row.bound(column)
            if bound.width > max_width and bound.overlaps(window):
                chosen[row.tid] = row
        return RefreshPlan.of(chosen.values(), cost)


MEDIAN = register(MedianAggregate())
CHOOSE_MEDIAN = register_choose_refresh("MEDIAN", MedianChooseRefresh())
