"""Snapshot reads for query-time consistency (paper §8.4).

The base architecture assumes no value-initiated refresh lands while a
query executes; otherwise the answer could mix data from different
moments, or a CHOOSE_REFRESH plan computed against one state could be
applied to another.  §8.4's suggested fix is multiversion concurrency
control: "permit refreshes to occur at any time, while still allowing each
in-progress query to read data that was current when the query started."

:class:`VersionedTable` implements the minimal multiversion store that
supports this: every cell update appends a ``(version, value)`` record,
:meth:`snapshot` captures the current version, and a
:class:`SnapshotView` resolves reads against that version while the live
table keeps moving.  Old versions are garbage-collected once no snapshot
can reach them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import TrappError
from repro.storage.row import Row
from repro.storage.schema import Schema
from repro.storage.table import Table

__all__ = ["VersionedTable", "SnapshotView"]


@dataclass(slots=True)
class _CellHistory:
    """Version-stamped values of one cell, oldest first."""

    versions: list[int] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)

    def record(self, version: int, value: Any) -> None:
        self.versions.append(version)
        self.values.append(value)

    def value_at(self, version: int) -> Any:
        """The newest value with version <= the requested one."""
        import bisect

        index = bisect.bisect_right(self.versions, version) - 1
        if index < 0:
            raise TrappError(f"no value recorded at or before version {version}")
        return self.values[index]

    def prune_before(self, version: int) -> None:
        """Drop history no snapshot at >= version can reach."""
        import bisect

        keep_from = max(0, bisect.bisect_right(self.versions, version) - 1)
        if keep_from:
            del self.versions[:keep_from]
            del self.values[:keep_from]


class VersionedTable:
    """A table whose updates are versioned, supporting snapshot reads.

    Wraps an ordinary :class:`Table` (the "live" state used by refresh
    bookkeeping) and mirrors every update into per-cell histories.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.live = Table(name, schema)
        self._history: dict[tuple[int, str], _CellHistory] = {}
        self._membership: dict[int, list[tuple[int, bool]]] = {}
        self._version = 0
        self._open_snapshots: list[int] = []

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    def insert(self, values: Mapping[str, Any], tid: int | None = None) -> Row:
        self._version += 1
        row = self.live.insert(values, tid=tid)
        self._membership.setdefault(row.tid, []).append((self._version, True))
        for column, value in values.items():
            history = self._history.setdefault((row.tid, column), _CellHistory())
            history.record(self._version, value)
        return row

    def delete(self, tid: int) -> None:
        self._version += 1
        self.live.delete(tid)
        self._membership.setdefault(tid, []).append((self._version, False))

    def update_value(self, tid: int, column: str, value: Any) -> None:
        self._version += 1
        self.live.update_value(tid, column, value)
        history = self._history.setdefault((tid, column), _CellHistory())
        history.record(self._version, value)

    # ------------------------------------------------------------------
    def snapshot(self) -> "SnapshotView":
        """A consistent read view of the current version."""
        snap = SnapshotView(self, self._version)
        self._open_snapshots.append(self._version)
        return snap

    def release(self, snapshot: "SnapshotView") -> None:
        """Close a snapshot, enabling garbage collection of old versions."""
        try:
            self._open_snapshots.remove(snapshot.version)
        except ValueError:
            raise TrappError("snapshot already released") from None
        self._gc()

    def _gc(self) -> None:
        horizon = min(self._open_snapshots, default=self._version)
        for history in self._history.values():
            history.prune_before(horizon)

    # ------------------------------------------------------------------
    def _alive_at(self, tid: int, version: int) -> bool:
        state = False
        for v, alive in self._membership.get(tid, []):
            if v > version:
                break
            state = alive
        return state

    def _value_at(self, tid: int, column: str, version: int) -> Any:
        return self._history[(tid, column)].value_at(version)

    def history_depth(self) -> int:
        """Total stored versions across cells (for GC tests)."""
        return sum(len(h.versions) for h in self._history.values())


class SnapshotView:
    """A frozen, Table-like view at one version of a VersionedTable.

    Provides the subset of the Table interface queries need (iteration,
    ``rows()``, ``row()``, ``schema``, ``name``), resolving every read at
    the snapshot version.
    """

    def __init__(self, source: VersionedTable, version: int) -> None:
        self._source = source
        self.version = version
        self.schema = source.live.schema
        self.name = source.live.name

    def tids(self) -> list[int]:
        return sorted(
            tid
            for tid in self._source._membership
            if self._source._alive_at(tid, self.version)
        )

    def rows(self) -> list[Row]:
        return [self.row(tid) for tid in self.tids()]

    def row(self, tid: int) -> Row:
        if not self._source._alive_at(tid, self.version):
            raise TrappError(
                f"tuple #{tid} does not exist at version {self.version}"
            )
        values = {
            column.name: self._source._value_at(tid, column.name, self.version)
            for column in self.schema
        }
        return Row(tid, values)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def __len__(self) -> int:
        return len(self.tids())

    def close(self) -> None:
        self._source.release(self)

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
