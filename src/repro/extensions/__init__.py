"""Paper §8 extensions: MEDIAN, TOP-n, iterative refresh, batching,
GROUP BY, relative precision."""

from repro.extensions.batching import BatchedCostModel, rebatch_plan
from repro.extensions.cardinality import ChurnBuffer, PendingChurn, churn_adjusted
from repro.extensions.groupby import GroupResult, grouped_query
from repro.extensions.hierarchy import HierarchicalCache, LevelRoot, build_chain
from repro.extensions.prerefresh import (
    PiggybackPolicy,
    edge_risk,
    pre_refresh_candidates,
)
from repro.extensions.continuous import ContinuousQuery
from repro.extensions.paths import (
    BoundedPathAnswer,
    PathQueryExecutor,
    bounded_shortest_path,
)
from repro.extensions.snapshot import SnapshotView, VersionedTable
from repro.extensions.iterative import IterativeRefreshExecutor, RefreshStep
from repro.extensions.median import bounded_median, choose_refresh_median, median_of
from repro.extensions.median_spec import (
    CHOOSE_MEDIAN,
    MEDIAN,
    MedianAggregate,
    MedianChooseRefresh,
)
from repro.extensions.relative import execute_relative_query
from repro.extensions.topn import TopNResult, bounded_top_n, choose_refresh_top_n

__all__ = [
    "MEDIAN",
    "CHOOSE_MEDIAN",
    "MedianAggregate",
    "MedianChooseRefresh",
    "bounded_median",
    "choose_refresh_median",
    "median_of",
    "TopNResult",
    "bounded_top_n",
    "choose_refresh_top_n",
    "IterativeRefreshExecutor",
    "RefreshStep",
    "BatchedCostModel",
    "rebatch_plan",
    "GroupResult",
    "grouped_query",
    "execute_relative_query",
    "ChurnBuffer",
    "PendingChurn",
    "churn_adjusted",
    "HierarchicalCache",
    "LevelRoot",
    "build_chain",
    "PiggybackPolicy",
    "edge_risk",
    "pre_refresh_candidates",
    "SnapshotView",
    "VersionedTable",
    "ContinuousQuery",
    "BoundedPathAnswer",
    "PathQueryExecutor",
    "bounded_shortest_path",
]
