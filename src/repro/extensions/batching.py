"""Refresh batching with per-source amortization (paper §8.2/§8.3).

The core optimizers assume set cost = sum of member costs, which "ignores
possible amortization due to batching multiple requests to the same
source".  This module models the amortized regime the paper sketches:
contacting a source costs a fixed ``setup`` once per batch, plus a smaller
``marginal`` per object — so refreshing many tuples from one source is
cheaper than the naive sum.

Two pieces are provided:

* :class:`BatchedCostModel` — evaluates the true cost of a refresh *set*
  under the amortized model (and exposes a conservative per-tuple upper
  bound usable by the unmodified optimizers);
* :func:`rebatch_plan` — a post-pass over any
  :class:`~repro.core.refresh.base.RefreshPlan` that exploits amortization:
  once a source must be contacted anyway (its setup cost is sunk), pulling
  *additional* cheap wide tuples from the same source into the batch can
  shrink the answer at marginal cost, allowing the plan to drop expensive
  tuples from other sources while still meeting the width budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.refresh.base import RefreshPlan
from repro.storage.row import Row

__all__ = ["BatchedCostModel", "rebatch_plan"]

SourceOf = Callable[[Row], str]


@dataclass(slots=True)
class BatchedCostModel:
    """Per-source amortized refresh costs: ``setup + marginal · k``.

    ``setup``/``marginal`` are the defaults every source charges;
    ``setup_by_source``/``marginal_by_source`` override them per source
    id, modeling heterogeneous shards (a nearby replica's round trip is
    cheaper than a cross-region one).  The sharded-sources benchmark
    leans on exactly this: the planner steers refreshes toward cheap
    shards, and the scheduler's receipts price each shard's message with
    that shard's own parameters.

    ``calibrator`` replaces the manual maps with *measured* pricing: a
    :class:`~repro.replication.calibration.CostCalibrator` whose EWMA
    ``(setup, marginal)`` estimates — fitted from observed network round
    trips — take precedence for every source with enough observations;
    unmeasured sources fall back to the maps/defaults as priors.
    """

    setup: float = 5.0
    marginal: float = 1.0
    source_of: SourceOf = field(default=lambda row: str(row.get("source", "")))
    setup_by_source: Mapping[str, float] | None = None
    marginal_by_source: Mapping[str, float] | None = None
    calibrator: "object | None" = None

    def setup_for(self, source_id: str) -> float:
        """One source's per-message setup cost (measured, else configured)."""
        if self.calibrator is not None:
            measured = self.calibrator.setup_for(source_id)
            if measured is not None:
                return measured
        if self.setup_by_source is None:
            return self.setup
        return float(self.setup_by_source.get(source_id, self.setup))

    def marginal_for(self, source_id: str) -> float:
        """One source's per-tuple marginal cost (measured, else configured)."""
        if self.calibrator is not None:
            measured = self.calibrator.marginal_for(source_id)
            if measured is not None:
                return measured
        if self.marginal_by_source is None:
            return self.marginal
        return float(self.marginal_by_source.get(source_id, self.marginal))

    def batch_cost(self, source_id: str, n_tuples: int) -> float:
        """Price of one batched message: the §8.2 ``setup + marginal·k``."""
        return self.setup_for(source_id) + self.marginal_for(source_id) * n_tuples

    def cost_of_set(self, rows: Iterable[Row]) -> float:
        """The true amortized cost of refreshing ``rows`` together."""
        per_source: dict[str, int] = {}
        for row in rows:
            per_source[self.source_of(row)] = per_source.get(self.source_of(row), 0) + 1
        return sum(
            self.batch_cost(source_id, count)
            for source_id, count in per_source.items()
        )

    def naive_upper_bound(self, row: Row) -> float:
        """A per-tuple cost safe for the additive optimizers.

        ``setup + marginal`` over-charges every tuple as if it paid its own
        setup; the additive optimum under this bound costs at least the
        amortized optimum, so plans remain feasible (if conservative).
        """
        source_id = self.source_of(row)
        return self.setup_for(source_id) + self.marginal_for(source_id)

    def as_func(self, source_column: str | None = None):
        """The naive upper bound as a tagged planner cost function.

        The additive optimizers see ``setup + marginal`` per tuple
        (feasible, conservative — see :meth:`naive_upper_bound`).  With
        ``source_column`` naming the column ``source_of`` reads, the
        function carries a ``vector_cost`` source tag so CHOOSE_REFRESH
        stays on the columnar path; without it (uniform parameters) the
        tag degrades to a uniform constant, which is exact.
        """
        upper = self.naive_upper_bound
        wrapper = lambda row: upper(row)  # noqa: E731 - taggable wrapper
        calibrated = (
            set(self.calibrator.estimates()) if self.calibrator is not None else set()
        )
        if (
            self.setup_by_source is None
            and self.marginal_by_source is None
            and not calibrated
        ):
            wrapper.vector_cost = ("uniform", self.setup + self.marginal)
        elif source_column is not None:
            sources = (
                set(self.setup_by_source or ())
                | set(self.marginal_by_source or ())
                | calibrated
            )
            wrapper.vector_cost = (
                "source",
                (
                    source_column,
                    {s: self.setup_for(s) + self.marginal_for(s) for s in sources},
                    self.setup + self.marginal,
                ),
            )
        return wrapper


def rebatch_plan(
    plan: RefreshPlan,
    all_rows: Sequence[Row],
    widths: Mapping[int, float],
    budget_slack: float,
    model: BatchedCostModel,
    extra_contacted: "set[str] | None" = None,
) -> RefreshPlan:
    """Improve a batch plan by exploiting per-source amortization.

    ``widths`` maps tuple id → the answer-width contribution its refresh
    removes (the optimizer's knapsack weight); ``budget_slack`` is how much
    width the current plan removes *beyond* what the constraint needs
    (always ≥ 0 for a feasible plan).

    Strategy: greedily try to *evict* the most expensive tuples whose
    removal keeps the removed-width total above requirement, then — for
    each source already paying setup — *absorb* extra unplanned tuples at
    pure marginal cost whenever doing so lets a further eviction succeed.
    The result never violates the constraint and never costs more than the
    input plan under the amortized model.

    ``extra_contacted`` names sources whose setup is already paid *outside*
    this plan — e.g. by other queries sharing the same refresh tick in the
    concurrent service.  Their tuples join the absorption candidates, which
    is what lets cross-query scheduling steer a plan onto sources the batch
    contacts anyway (``model`` should then price those setups as sunk, as
    the scheduler's tick-aware model does).
    """
    by_tid = {row.tid: row for row in all_rows}
    chosen = {tid for tid in plan.tids}

    def amortized_cost(tids: set[int]) -> float:
        return model.cost_of_set(by_tid[tid] for tid in tids)

    def removed_width(tids: set[int]) -> float:
        return sum(widths.get(tid, 0.0) for tid in tids)

    required = removed_width(chosen) - budget_slack
    best = set(chosen)
    best_cost = amortized_cost(best)
    # One ascending-width ordering serves every greedy pass below (the
    # planner's sorted-width orderings applied to rebatching): filtering
    # it by membership replaces the per-probe re-sort the absorption loop
    # used to pay, and keeps every pass deterministic.
    ascending = sorted(by_tid, key=lambda t: (widths.get(t, 0.0), t))

    # Eviction pass: drop tuples while the width requirement holds.
    # Least width contribution first — those are the cheapest to give up
    # feasibility-wise, letting the most evictions (each saving at least a
    # marginal, sometimes a whole setup) go through.
    for tid in ascending:
        if tid not in chosen:
            continue
        trial = best - {tid}
        if removed_width(trial) + 1e-12 >= required:
            cost = amortized_cost(trial)
            if cost <= best_cost:
                best = trial
                best_cost = cost

    # Absorption pass: sources already contacted can contribute extra wide
    # tuples at marginal cost, potentially unlocking cross-source evictions.
    contacted = {model.source_of(by_tid[tid]) for tid in best}
    if extra_contacted:
        contacted |= set(extra_contacted)
    extras = [
        row
        for row in all_rows
        if row.tid not in best
        and widths.get(row.tid, 0.0) > 0
        and model.source_of(row) in contacted
    ]
    extras.sort(key=lambda r: -widths.get(r.tid, 0.0))
    for extra in extras:
        trial = best | {extra.tid}
        # Try to pay for the absorption by evicting somewhere else.
        for tid in ascending:
            if tid == extra.tid or tid not in trial:
                continue
            candidate = trial - {tid}
            if removed_width(candidate) + 1e-12 >= required:
                cost = amortized_cost(candidate)
                if cost < best_cost:
                    best = candidate
                    best_cost = cost
                    break

    return RefreshPlan(frozenset(best), best_cost)
