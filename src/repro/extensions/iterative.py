"""Iterative / online CHOOSE_REFRESH (paper §8.2 extension).

The batch algorithms in :mod:`repro.core.refresh` select the whole refresh
set *before* any refresh happens, so the choice must be safe for every
possible realization of the refreshed values.  §8.2 proposes the
alternative this module implements: refresh tuples one at a time (or one
small batch at a time), recomputing the bounded answer after each step and
stopping as soon as the constraint is met.  Because actual refreshed
values usually land strictly inside their old bounds, the iterative
strategy often refreshes fewer tuples than the batch bound requires — at
the price of more protocol round trips.

Also provided is the §8.2 "online aggregation" behaviour: the iterator
yields the bounded answer after every refresh, so a UI can show the bound
shrinking toward the precise answer (CONTROL-style progressive results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.core.aggregates import get_aggregate
from repro.core.answer import BoundedAnswer
from repro.core.bound import Bound
from repro.core.constraints import width_within
from repro.core.executor import RefreshProvider
from repro.core.refresh.base import CostFunc, uniform_cost
from repro.errors import ConstraintUnsatisfiableError
from repro.predicates.ast import Predicate, TruePredicate
from repro.predicates.classify import classify
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = ["IterativeRefreshExecutor", "RefreshStep"]


@dataclass(frozen=True, slots=True)
class RefreshStep:
    """One step of the online refinement: who was refreshed, where the
    answer stands."""

    refreshed_tid: int | None
    bound: Bound
    cumulative_cost: float


class IterativeRefreshExecutor:
    """Refreshes one tuple at a time until the constraint is met.

    Tuple priority: widest remaining uncertainty contribution per unit
    cost — the greedy rule that maximizes expected width reduction per
    round trip.  For MIN/MAX the contribution is the overlap with the
    contested region; for SUM/AVG it is the (zero-extended) bound width;
    for COUNT it is T? membership.
    """

    def __init__(
        self,
        refresher: RefreshProvider,
        cost: CostFunc = uniform_cost,
    ) -> None:
        self.refresher = refresher
        self.cost = cost

    # ------------------------------------------------------------------
    def run(
        self,
        table: Table,
        aggregate: str,
        column: str | None,
        max_width: float,
        predicate: Predicate | None = None,
    ) -> BoundedAnswer:
        """Drain :meth:`steps` and return the final answer."""
        final_bound: Bound | None = None
        refreshed: list[int] = []
        total_cost = 0.0
        initial: Bound | None = None
        for step in self.steps(table, aggregate, column, max_width, predicate):
            if initial is None:
                initial = step.bound
            final_bound = step.bound
            total_cost = step.cumulative_cost
            if step.refreshed_tid is not None:
                refreshed.append(step.refreshed_tid)
        assert final_bound is not None
        return BoundedAnswer(
            bound=final_bound,
            refreshed=frozenset(refreshed),
            refresh_cost=total_cost,
            initial_bound=initial,
        )

    def steps(
        self,
        table: Table,
        aggregate: str,
        column: str | None,
        max_width: float,
        predicate: Predicate | None = None,
    ) -> Iterator[RefreshStep]:
        """Yield the online sequence of bounded answers.

        The first step carries ``refreshed_tid=None`` (the cached-only
        answer); each later step reports one refresh.
        """
        predicate = predicate if predicate is not None else TruePredicate()
        spec = get_aggregate(aggregate)
        total_cost = 0.0

        bound = self._compute(table, spec, column, predicate)
        yield RefreshStep(None, bound, total_cost)

        for _ in range(len(table) + 1):
            if width_within(bound.width, max_width):
                return
            target = self._pick(table, spec.name, column, predicate, bound, max_width)
            if target is None:
                raise ConstraintUnsatisfiableError(
                    f"answer {bound} cannot be narrowed to width {max_width:g}; "
                    "no refreshable tuples remain"
                )
            total_cost += self.cost(target)
            self.refresher.refresh(table, [target.tid])
            bound = self._compute(table, spec, column, predicate)
            yield RefreshStep(target.tid, bound, total_cost)
        if not width_within(bound.width, max_width):
            raise ConstraintUnsatisfiableError(
                f"answer {bound} still wider than {max_width:g} after "
                f"{len(table)} refresh rounds; the refresher is not "
                "collapsing bounds"
            )

    # ------------------------------------------------------------------
    def _compute(
        self, table: Table, spec, column: str | None, predicate: Predicate
    ) -> Bound:
        if isinstance(predicate, TruePredicate):
            return spec.bound_without_predicate(table.rows(), column)
        classification = classify(table.rows(), predicate)
        return spec.bound_with_classification(classification, column)

    def _pick(
        self,
        table: Table,
        aggregate: str,
        column: str | None,
        predicate: Predicate,
        bound: Bound,
        max_width: float,
    ) -> Row | None:
        """The unrefreshed tuple with the best benefit/cost score."""
        if isinstance(predicate, TruePredicate):
            plus_rows = table.rows()
            maybe_rows: list[Row] = []
        else:
            classification = classify(table.rows(), predicate)
            plus_rows = classification.plus
            maybe_rows = classification.maybe

        best: Row | None = None
        best_score = 0.0
        for row, uncertain in [(r, False) for r in plus_rows] + [
            (r, True) for r in maybe_rows
        ]:
            score = self._benefit(row, aggregate, column, uncertain, bound, max_width)
            if score <= 0:
                continue
            ratio = score / max(self.cost(row), 1e-12)
            if best is None or ratio > best_score:
                best = row
                best_score = ratio
        return best

    @staticmethod
    def _benefit(
        row: Row,
        aggregate: str,
        column: str | None,
        uncertain: bool,
        bound: Bound,
        max_width: float,
    ) -> float:
        if aggregate == "COUNT":
            return 1.0 if uncertain else 0.0
        assert column is not None
        value = row.bound(column)
        if aggregate in ("SUM", "AVG"):
            width = value.extend_to_zero().width if uncertain else value.width
            return width + (1.0 if uncertain else 0.0)
        if aggregate == "MIN":
            # Contribution to the contested region [lo_A, lo_A + width).
            contested_top = bound.lo + max(bound.width - max_width, 0.0)
            overlap = max(0.0, min(value.hi, contested_top) - value.lo)
            return overlap if value.width > 0 else 0.0
        if aggregate == "MAX":
            contested_bottom = bound.hi - max(bound.width - max_width, 0.0)
            overlap = max(0.0, value.hi - max(value.lo, contested_bottom))
            return overlap if value.width > 0 else 0.0
        # Unknown aggregate: fall back to raw width.
        return value.width
