"""Bounded MEDIAN and refresh selection (paper §8.1 extension).

The paper lists MEDIAN among the aggregates it wants to support next,
citing the companion STOC 2000 work on computing the median with
uncertainty.  This module provides the natural TRAPP/AG formulation:

* **Bounded answer.** With ``n`` tuples whose values carry bounds, the
  median's extremes are reached when every value sits at the same end of
  its bound: the lower endpoint of the bounded median is the median of the
  ``L_i`` and the upper endpoint is the median of the ``H_i``.  (For any
  realization, value ``v_i ∈ [L_i, H_i]`` implies the sorted order's k-th
  statistic is sandwiched between the k-th statistics of the two endpoint
  multisets.)  For even ``n`` we use the lower median, matching the STOC
  paper's selection-index convention.

* **CHOOSE_REFRESH.** Uncertainty in the median comes from tuples whose
  bounds straddle the candidate median window.  The uniform-cost optimal
  strategy mirrors the STOC algorithm's structure: repeatedly refresh the
  tuples whose bounds overlap the interval between the two endpoint
  medians, cheapest-first, until the window narrows to the constraint.
  We implement the batch variant: select all tuples whose bound intersects
  the open interval ``(median_k(L) window, median_k(H) window)`` beyond
  the precision budget.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.answer import BoundedAnswer
from repro.core.constraints import width_within
from repro.core.bound import Bound
from repro.core.executor import ExecutionSteps, PlannedRefresh
from repro.core.refresh.base import CostFunc, RefreshPlan, uniform_cost
from repro.errors import ConstraintUnsatisfiableError, TrappError
from repro.predicates.ast import Predicate, TruePredicate
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = [
    "bounded_median",
    "choose_refresh_median",
    "median_of",
    "median_steps",
]


def median_of(values: Sequence[float]) -> float:
    """The lower median (k = ceil(n/2)-th smallest, 1-indexed)."""
    if not values:
        raise TrappError("median of an empty collection is undefined")
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


def bounded_median(rows: Sequence[Row], column: str) -> Bound:
    """The bounded MEDIAN over a column of bounded values.

    ``[ median(L_1..L_n) , median(H_1..H_n) ]`` — both endpoint multisets
    use the same selection index, so the interval contains the precise
    median for every realization.
    """
    if not rows:
        return Bound.unbounded()
    lows = [row.bound(column).lo for row in rows]
    highs = [row.bound(column).hi for row in rows]
    return Bound(median_of(lows), median_of(highs))


def choose_refresh_median(
    rows: Sequence[Row],
    column: str,
    max_width: float,
    cost: CostFunc = uniform_cost,
) -> RefreshPlan:
    """Select tuples to refresh so the median bound narrows to ``max_width``.

    The rule is forced (cost-independent), like MIN/MAX: refresh every
    tuple whose bound is **wider than the budget** and **overlaps the
    initial median window** ``W0 = [median(L), median(H)]``.

    Soundness argument.  Refreshing replaces ``[L_i, H_i]`` by an exact
    value inside it, so every post-refresh lower-endpoint multiset
    dominates the original (``L'_i >= L_i``) and every upper-endpoint
    multiset is dominated (``H'_i <= H_i``); hence any post-refresh window
    ``[median(L'), median(H')]`` is contained in ``W0``.  A counting
    argument shows every window ``[a, b]`` is *spanned* by some tuple
    (``L'_i <= a`` and ``H'_i >= b``): at most ``k-1`` tuples have
    ``H' < b`` and at most ``n-k`` have ``L' > a``, leaving at least one
    spanning tuple, whose width bounds the window width.  Post-refresh, a
    spanning tuple is refreshed (width 0), or has width ``<= R``, or was
    disjoint from ``W0`` — and the last cannot span a sub-window of
    ``W0``.  Therefore the final width is at most ``R`` for every
    realization of the refreshed values.
    """
    if max_width < 0:
        raise TrappError(f"precision budget must be non-negative, got {max_width}")
    if not rows:
        return RefreshPlan.empty()

    lows = [row.bound(column).lo for row in rows]
    highs = [row.bound(column).hi for row in rows]
    window = Bound(median_of(lows), median_of(highs))
    if width_within(window.width, max_width):
        return RefreshPlan.empty()

    chosen = [
        row
        for row in rows
        if row.bound(column).width > max_width
        and row.bound(column).overlaps(window)
    ]
    return RefreshPlan.of(chosen, cost)


def median_steps(
    table: Table,
    column: str,
    max_width: float,
    predicate: Predicate | None = None,
    cost: CostFunc = uniform_cost,
) -> ExecutionSteps:
    """MEDIAN as a resumable generator speaking ``PlannedRefresh``.

    The module-level counterpart of the registered MEDIAN aggregate's
    executor path (SQL statements compile through that); useful when
    driving the extension functions directly, with the same protocol a
    refresh scheduler expects.  The predicate must read exact columns
    only.  Returns a :class:`~repro.core.answer.BoundedAnswer` via
    ``StopIteration.value``.
    """
    from repro.predicates.eval import evaluate_exact

    predicate = predicate if predicate is not None else TruePredicate()
    if isinstance(predicate, TruePredicate):
        rows = table.rows()
    else:
        rows = [row for row in table.rows() if evaluate_exact(predicate, row)]

    bound = bounded_median(rows, column)
    initial = bound
    refreshed: set[int] = set()
    total_cost = 0.0
    while not width_within(bound.width, max_width):
        plan = choose_refresh_median(rows, column, max_width, cost)
        if not plan.tids or plan.tids <= refreshed:
            raise ConstraintUnsatisfiableError(
                f"median answer {bound} cannot be narrowed below "
                f"{bound.width:g} (requested {max_width:g})"
            )
        effective = yield PlannedRefresh(table, plan, max_width, "MEDIAN")
        if effective is None:
            effective = plan
        refreshed.update(effective.tids)
        total_cost += effective.total_cost
        bound = bounded_median(rows, column)
    return BoundedAnswer(
        bound=bound,
        refreshed=frozenset(refreshed),
        refresh_cost=total_cost,
        initial_bound=initial,
    )
