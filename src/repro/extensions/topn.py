"""Bounded TOP-n (paper §8.1 extension).

TOP-n generalizes MAX: the answer of interest is the n-th largest value
(and, for reporting, the identity of the top-n set).  Under bounded data:

* the n-th largest value's bounded answer is
  ``[ nth_largest(L_i) , nth_largest(H_i) ]`` — both endpoint multisets use
  the same order statistic, mirroring the bounded-median argument;
* the top-n *membership* splits tuples into certain members (tuples whose
  lower endpoint beats the (n+1)-th largest upper endpoint), certain
  non-members, and unresolved candidates.

CHOOSE_REFRESH follows the MAX pattern (Appendix C): refresh every tuple
whose bound overlaps the contested region around the n-th-place cutoff
wider than the precision budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.bound import Bound
from repro.core.refresh.base import CostFunc, RefreshPlan, uniform_cost
from repro.errors import TrappError
from repro.storage.row import Row

__all__ = ["TopNResult", "bounded_top_n", "choose_refresh_top_n"]


def _nth_largest(values: Sequence[float], n: int) -> float:
    return sorted(values, reverse=True)[n - 1]


@dataclass(frozen=True, slots=True)
class TopNResult:
    """The bounded n-th value plus the three membership sets."""

    #: Bounded value of the n-th largest element.
    nth_value: Bound
    #: Tuple ids certainly in the top-n set.
    certain_members: frozenset[int]
    #: Tuple ids that might be in the top-n set.
    possible_members: frozenset[int]


def bounded_top_n(rows: Sequence[Row], column: str, n: int) -> TopNResult:
    """Compute the bounded TOP-n over a column of bounded values."""
    if n < 1:
        raise TrappError(f"n must be at least 1, got {n}")
    if len(rows) < n:
        raise TrappError(f"TOP-{n} over only {len(rows)} tuples is undefined")

    lows = [row.bound(column).lo for row in rows]
    highs = [row.bound(column).hi for row in rows]
    nth_value = Bound(_nth_largest(lows, n), _nth_largest(highs, n))

    # A tuple is certainly in the top n iff its LOWER endpoint beats the
    # (n+1)-th largest UPPER endpoint (i.e. at most n-1 other tuples can
    # possibly exceed it).  It is possibly in the top n iff its UPPER
    # endpoint reaches the n-th largest LOWER endpoint.
    certain: set[int] = set()
    possible: set[int] = set()
    if len(rows) == n:
        certain = {row.tid for row in rows}
        possible = set(certain)
        return TopNResult(nth_value, frozenset(certain), frozenset(possible))

    for row in rows:
        b = row.bound(column)
        others_hi = sorted(
            (r.bound(column).hi for r in rows if r.tid != row.tid), reverse=True
        )
        # Count of others that can possibly beat this tuple.
        can_beat = sum(1 for h in others_hi if h > b.lo)
        if can_beat < n:
            certain.add(row.tid)
        others_lo = sorted(
            (r.bound(column).lo for r in rows if r.tid != row.tid), reverse=True
        )
        must_beat = sum(1 for l in others_lo if l >= b.hi)
        if must_beat < n:
            possible.add(row.tid)
    return TopNResult(nth_value, frozenset(certain), frozenset(possible))


def choose_refresh_top_n(
    rows: Sequence[Row],
    column: str,
    n: int,
    max_width: float,
    cost: CostFunc = uniform_cost,
) -> RefreshPlan:
    """Refresh set narrowing the n-th value's bound to ``max_width``.

    Analogue of CHOOSE_REFRESH_MAX: the guaranteed *lower* cutoff is the
    n-th largest lower endpoint; every tuple whose upper endpoint exceeds
    ``cutoff + max_width`` could leave the n-th value above the budget and
    must be refreshed (along with tuples straddling the cutoff from below
    whose lower endpoint is within the contested region).
    """
    if len(rows) < n:
        raise TrappError(f"TOP-{n} over only {len(rows)} tuples is undefined")
    lows = [row.bound(column).lo for row in rows]
    cutoff = _nth_largest(lows, n)
    chosen = [
        row
        for row in rows
        if row.bound(column).hi > cutoff + max_width
        and row.bound(column).width > 0
    ]
    return RefreshPlan.of(chosen, cost)
