"""Bounded TOP-n (paper §8.1 extension).

TOP-n generalizes MAX: the answer of interest is the n-th largest value
(and, for reporting, the identity of the top-n set).  Under bounded data:

* the n-th largest value's bounded answer is
  ``[ nth_largest(L_i) , nth_largest(H_i) ]`` — both endpoint multisets use
  the same order statistic, mirroring the bounded-median argument;
* the top-n *membership* splits tuples into certain members (tuples whose
  lower endpoint beats the (n+1)-th largest upper endpoint), certain
  non-members, and unresolved candidates.

CHOOSE_REFRESH follows the MAX pattern (Appendix C): refresh every tuple
whose bound overlaps the contested region around the n-th-place cutoff
wider than the precision budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.answer import BoundedAnswer
from repro.core.bound import Bound
from repro.core.constraints import width_within
from repro.core.executor import ExecutionSteps, PlannedRefresh
from repro.core.refresh.base import CostFunc, RefreshPlan, uniform_cost
from repro.errors import ConstraintUnsatisfiableError, TrappError
from repro.predicates.ast import Predicate, TruePredicate
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = [
    "TopNResult",
    "TopNAnswer",
    "bounded_top_n",
    "choose_refresh_top_n",
    "top_n_steps",
]


def _nth_largest(values: Sequence[float], n: int) -> float:
    return sorted(values, reverse=True)[n - 1]


@dataclass(frozen=True, slots=True)
class TopNResult:
    """The bounded n-th value plus the three membership sets."""

    #: Bounded value of the n-th largest element.
    nth_value: Bound
    #: Tuple ids certainly in the top-n set.
    certain_members: frozenset[int]
    #: Tuple ids that might be in the top-n set.
    possible_members: frozenset[int]


def bounded_top_n(rows: Sequence[Row], column: str, n: int) -> TopNResult:
    """Compute the bounded TOP-n over a column of bounded values."""
    if n < 1:
        raise TrappError(f"n must be at least 1, got {n}")
    if len(rows) < n:
        raise TrappError(f"TOP-{n} over only {len(rows)} tuples is undefined")

    lows = [row.bound(column).lo for row in rows]
    highs = [row.bound(column).hi for row in rows]
    nth_value = Bound(_nth_largest(lows, n), _nth_largest(highs, n))

    # A tuple is certainly in the top n iff its LOWER endpoint beats the
    # (n+1)-th largest UPPER endpoint (i.e. at most n-1 other tuples can
    # possibly exceed it).  It is possibly in the top n iff its UPPER
    # endpoint reaches the n-th largest LOWER endpoint.
    certain: set[int] = set()
    possible: set[int] = set()
    if len(rows) == n:
        certain = {row.tid for row in rows}
        possible = set(certain)
        return TopNResult(nth_value, frozenset(certain), frozenset(possible))

    for row in rows:
        b = row.bound(column)
        others_hi = sorted(
            (r.bound(column).hi for r in rows if r.tid != row.tid), reverse=True
        )
        # Count of others that can possibly beat this tuple.
        can_beat = sum(1 for h in others_hi if h > b.lo)
        if can_beat < n:
            certain.add(row.tid)
        others_lo = sorted(
            (r.bound(column).lo for r in rows if r.tid != row.tid), reverse=True
        )
        must_beat = sum(1 for l in others_lo if l >= b.hi)
        if must_beat < n:
            possible.add(row.tid)
    return TopNResult(nth_value, frozenset(certain), frozenset(possible))


def choose_refresh_top_n(
    rows: Sequence[Row],
    column: str,
    n: int,
    max_width: float,
    cost: CostFunc = uniform_cost,
) -> RefreshPlan:
    """Refresh set narrowing the n-th value's bound to ``max_width``.

    Analogue of CHOOSE_REFRESH_MAX: the guaranteed *lower* cutoff is the
    n-th largest lower endpoint; every tuple whose upper endpoint exceeds
    ``cutoff + max_width`` could leave the n-th value above the budget and
    must be refreshed (along with tuples straddling the cutoff from below
    whose lower endpoint is within the contested region).
    """
    if len(rows) < n:
        raise TrappError(f"TOP-{n} over only {len(rows)} tuples is undefined")
    lows = [row.bound(column).lo for row in rows]
    cutoff = _nth_largest(lows, n)
    chosen = [
        row
        for row in rows
        if row.bound(column).hi > cutoff + max_width
        and row.bound(column).width > 0
    ]
    return RefreshPlan.of(chosen, cost)


@dataclass(frozen=True, slots=True)
class TopNAnswer(BoundedAnswer):
    """A TOP-n query's answer in :class:`BoundedAnswer` clothing.

    ``bound`` is the bounded n-th largest value, so the service's width
    checks (admission revalidation, result-cache validity) apply to TOP-n
    exactly as to scalar aggregates; the membership sets ride along.
    """

    certain_members: frozenset[int] = frozenset()
    possible_members: frozenset[int] = frozenset()


def top_n_steps(
    table: Table,
    n: int,
    column: str,
    max_width: float,
    predicate: Predicate | None = None,
    cost: CostFunc = uniform_cost,
) -> ExecutionSteps:
    """TOP-n as a resumable generator speaking ``PlannedRefresh``.

    The predicate must read exact columns only (two-valued membership —
    the compiler enforces this for SQL statements); the n-th value's
    bound is then narrowed to ``max_width`` by yielding CHOOSE_REFRESH
    plans until it fits.  Returns a :class:`TopNAnswer` via
    ``StopIteration.value``.
    """
    from repro.predicates.eval import evaluate_exact

    predicate = predicate if predicate is not None else TruePredicate()
    if isinstance(predicate, TruePredicate):
        rows = table.rows()
    else:
        rows = [row for row in table.rows() if evaluate_exact(predicate, row)]

    result = bounded_top_n(rows, column, n)
    initial = result.nth_value
    refreshed: set[int] = set()
    total_cost = 0.0
    while not width_within(result.nth_value.width, max_width):
        plan = choose_refresh_top_n(rows, column, n, max_width, cost)
        if not plan.tids or plan.tids <= refreshed:
            raise ConstraintUnsatisfiableError(
                f"TOP-{n} answer {result.nth_value} cannot be narrowed "
                f"below {result.nth_value.width:g} (requested {max_width:g})"
            )
        effective = yield PlannedRefresh(table, plan, max_width, "TOPN")
        if effective is None:
            effective = plan
        refreshed.update(effective.tids)
        total_cost += effective.total_cost
        result = bounded_top_n(rows, column, n)
    return TopNAnswer(
        bound=result.nth_value,
        refreshed=frozenset(refreshed),
        refresh_cost=total_cost,
        initial_bound=initial,
        certain_members=result.certain_members,
        possible_members=result.possible_members,
    )
