"""GROUP BY over exact grouping keys (paper §8.1 extension).

Full grouping on *bounded* values (uncertain group membership) is listed
as open future work; the tractable and immediately useful case — grouping
on exact columns (link endpoints, tickers, source ids) while aggregating a
bounded column — is implemented here.  Each group independently runs the
single-table machinery, and the per-group precision constraint is enforced
with the standard CHOOSE_REFRESH algorithms, so every group's answer
carries the same guarantee as a standalone query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.aggregates import get_aggregate
from repro.core.answer import BoundedAnswer
from repro.core.constraints import width_within
from repro.core.executor import NullRefreshProvider, RefreshProvider
from repro.core.refresh import get_choose_refresh
from repro.core.refresh.base import CostFunc, uniform_cost
from repro.errors import TrappError, UnknownColumnError
from repro.predicates.ast import Predicate, TruePredicate
from repro.predicates.classify import classify
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = ["GroupResult", "grouped_query"]


@dataclass(frozen=True, slots=True)
class GroupResult:
    """One group's key and bounded answer."""

    key: tuple[Hashable, ...]
    answer: BoundedAnswer
    size: int


def grouped_query(
    table: Table,
    group_by: Sequence[str],
    aggregate: str,
    column: str | None,
    max_width: float,
    predicate: Predicate | None = None,
    cost: CostFunc = uniform_cost,
    refresher: RefreshProvider | None = None,
    epsilon: float | None = None,
) -> list[GroupResult]:
    """Run ``SELECT key, AGG(column) WITHIN R ... GROUP BY key``.

    Grouping columns must be exact (grouping on bounded values is the open
    problem the paper defers).  Returns one :class:`GroupResult` per group,
    ordered by key.
    """
    if not group_by:
        raise TrappError("grouped_query requires at least one grouping column")
    for name in group_by:
        spec = table.schema.column(name)
        if spec.is_bounded:
            raise TrappError(
                f"cannot group on bounded column {name!r}; grouping keys "
                "must be exact (paper §8.1 leaves bounded grouping open)"
            )

    refresher = refresher if refresher is not None else NullRefreshProvider()
    predicate = predicate if predicate is not None else TruePredicate()
    agg = get_aggregate(aggregate)
    chooser = get_choose_refresh(aggregate, epsilon=epsilon)

    groups: dict[tuple[Hashable, ...], list[Row]] = {}
    for row in table.rows():
        key = tuple(row[name] for name in group_by)
        groups.setdefault(key, []).append(row)

    results: list[GroupResult] = []
    for key in sorted(groups, key=repr):
        rows = groups[key]
        bounded_pred = _touches_bounded(table, predicate)
        initial = _bound(agg, rows, column, predicate, bounded_pred)
        if width_within(initial.width, max_width):
            results.append(
                GroupResult(key, BoundedAnswer(bound=initial, initial_bound=initial), len(rows))
            )
            continue
        if bounded_pred:
            classification = classify(rows, predicate)
            plan = chooser.with_classification(classification, column, max_width, cost)
        else:
            filtered = _exact_filter(rows, predicate)
            plan = chooser.without_predicate(filtered, column, max_width, cost)
        refresher.refresh(table, plan.tids)
        final = _bound(agg, rows, column, predicate, bounded_pred)
        results.append(
            GroupResult(
                key,
                BoundedAnswer(
                    bound=final,
                    refreshed=plan.tids,
                    refresh_cost=plan.total_cost,
                    initial_bound=initial,
                ),
                len(rows),
            )
        )
    return results


def _touches_bounded(table: Table, predicate: Predicate) -> bool:
    from repro.predicates.ast import columns_of

    return any(
        name in table.schema and table.schema[name].is_bounded
        for name in columns_of(predicate)
    )


def _exact_filter(rows: list[Row], predicate: Predicate) -> list[Row]:
    from repro.predicates.eval import evaluate_exact

    if isinstance(predicate, TruePredicate):
        return rows
    return [row for row in rows if evaluate_exact(predicate, row)]


def _bound(agg, rows: list[Row], column: str | None, predicate: Predicate, bounded_pred: bool):
    if bounded_pred:
        return agg.bound_with_classification(classify(rows, predicate), column)
    return agg.bound_without_predicate(_exact_filter(rows, predicate), column)
