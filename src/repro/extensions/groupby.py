"""GROUP BY over exact grouping keys (paper §8.1 extension).

Full grouping on *bounded* values (uncertain group membership) is listed
as open future work; the tractable and immediately useful case — grouping
on exact columns (link endpoints, tickers, source ids) while aggregating a
bounded column — is implemented here.  Each group independently runs the
single-table machinery, and the per-group precision constraint is enforced
with the standard CHOOSE_REFRESH algorithms, so every group's answer
carries the same guarantee as a standalone query.

:func:`grouped_query_steps` speaks the executor's ``PlannedRefresh``
generator protocol — one yielded plan per group that needs a refresh —
so grouped statements suspend into the concurrent service's refresh
scheduler like any single-table query; :func:`grouped_query` is the
serial driver around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.aggregates import get_aggregate
from repro.core.answer import BoundedAnswer
from repro.core.bound import Bound
from repro.core.constraints import width_within
from repro.core.executor import (
    ExecutionSteps,
    NullRefreshProvider,
    PlannedRefresh,
    RefreshProvider,
    drive_steps,
)
from repro.core.refresh import get_choose_refresh
from repro.core.refresh.base import CostFunc, uniform_cost
from repro.errors import ConstraintUnsatisfiableError, TrappError
from repro.predicates.ast import Predicate, TruePredicate
from repro.predicates.classify import classify
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = ["GroupResult", "GroupedAnswer", "grouped_query", "grouped_query_steps"]


@dataclass(frozen=True, slots=True)
class GroupResult:
    """One group's key and bounded answer."""

    key: tuple[Hashable, ...]
    answer: BoundedAnswer
    size: int


@dataclass(frozen=True, slots=True)
class GroupedAnswer(BoundedAnswer):
    """All groups' answers behind one headline :class:`BoundedAnswer`.

    ``bound`` is the *widest* group's bound (exact zero when the table is
    empty), so ``meets(R)`` holds iff every group meets the per-group
    constraint — the service's revalidation and result-cache width checks
    then apply unchanged to grouped statements.  ``refreshed`` and
    ``refresh_cost`` aggregate over all groups; the per-group breakdown
    lives in ``groups``.
    """

    groups: tuple[GroupResult, ...] = ()


def grouped_query_steps(
    table: Table,
    group_by: Sequence[str],
    aggregate: str,
    column: str | None,
    max_width: float,
    predicate: Predicate | None = None,
    cost: CostFunc = uniform_cost,
    epsilon: float | None = None,
) -> ExecutionSteps:
    """``SELECT key, AGG(column) WITHIN R ... GROUP BY key`` as a generator.

    Groups are planned in deterministic key order; whenever a group's
    cached bound is too wide the chosen refresh plan is yielded as a
    :class:`~repro.core.executor.PlannedRefresh` (groups partition the
    table, so plans never interact) and the driver sends back the
    effective plan.  Returns a :class:`GroupedAnswer` via
    ``StopIteration.value``.
    """
    if not group_by:
        raise TrappError("grouped_query requires at least one grouping column")
    for name in group_by:
        spec = table.schema.column(name)
        if spec.is_bounded:
            raise TrappError(
                f"cannot group on bounded column {name!r}; grouping keys "
                "must be exact (paper §8.1 leaves bounded grouping open)"
            )

    predicate = predicate if predicate is not None else TruePredicate()
    agg = get_aggregate(aggregate)
    chooser = get_choose_refresh(aggregate, epsilon=epsilon)
    bounded_pred = _touches_bounded(table, predicate)

    groups: dict[tuple[Hashable, ...], list[Row]] = {}
    for row in table.rows():
        key = tuple(row[name] for name in group_by)
        groups.setdefault(key, []).append(row)

    results: list[GroupResult] = []
    refreshed: set[int] = set()
    total_cost = 0.0
    for key in sorted(groups, key=repr):
        rows = groups[key]
        initial = _bound(agg, rows, column, predicate, bounded_pred)
        if width_within(initial.width, max_width):
            results.append(
                GroupResult(key, BoundedAnswer(bound=initial, initial_bound=initial), len(rows))
            )
            continue
        if bounded_pred:
            classification = classify(rows, predicate)
            plan = chooser.with_classification(classification, column, max_width, cost)
        else:
            filtered = _exact_filter(rows, predicate)
            plan = chooser.without_predicate(filtered, column, max_width, cost)
        effective = yield PlannedRefresh(table, plan, max_width, aggregate)
        if effective is None:
            effective = plan
        final = _bound(agg, rows, column, predicate, bounded_pred)
        if not width_within(final.width, max_width):
            raise ConstraintUnsatisfiableError(
                f"post-refresh group {key!r} answer {final} (width "
                f"{final.width:g}) violates constraint {max_width:g}"
            )
        refreshed.update(effective.tids)
        total_cost += effective.total_cost
        results.append(
            GroupResult(
                key,
                BoundedAnswer(
                    bound=final,
                    refreshed=effective.tids,
                    refresh_cost=effective.total_cost,
                    initial_bound=initial,
                ),
                len(rows),
            )
        )

    widest = max(
        (r.answer.bound for r in results), key=lambda b: b.width, default=Bound(0.0, 0.0)
    )
    widest_initial = max(
        (
            r.answer.initial_bound
            for r in results
            if r.answer.initial_bound is not None
        ),
        key=lambda b: b.width,
        default=None,
    )
    return GroupedAnswer(
        bound=widest,
        refreshed=frozenset(refreshed),
        refresh_cost=total_cost,
        initial_bound=widest_initial,
        groups=tuple(results),
    )


def grouped_query(
    table: Table,
    group_by: Sequence[str],
    aggregate: str,
    column: str | None,
    max_width: float,
    predicate: Predicate | None = None,
    cost: CostFunc = uniform_cost,
    refresher: RefreshProvider | None = None,
    epsilon: float | None = None,
) -> list[GroupResult]:
    """Run ``SELECT key, AGG(column) WITHIN R ... GROUP BY key``.

    Grouping columns must be exact (grouping on bounded values is the open
    problem the paper defers).  Returns one :class:`GroupResult` per group,
    ordered by key.
    """
    refresher = refresher if refresher is not None else NullRefreshProvider()
    steps = grouped_query_steps(
        table, group_by, aggregate, column, max_width, predicate, cost, epsilon
    )
    answer = drive_steps(steps, refresher)
    return list(answer.groups)


def _touches_bounded(table: Table, predicate: Predicate) -> bool:
    from repro.predicates.ast import columns_of

    return any(
        name in table.schema and table.schema[name].is_bounded
        for name in columns_of(predicate)
    )


def _exact_filter(rows: list[Row], predicate: Predicate) -> list[Row]:
    from repro.predicates.eval import evaluate_exact

    if isinstance(predicate, TruePredicate):
        return rows
    return [row for row in rows if evaluate_exact(predicate, row)]


def _bound(agg, rows: list[Row], column: str | None, predicate: Predicate, bounded_pred: bool):
    if bounded_pred:
        return agg.bound_with_classification(classify(rows, predicate), column)
    return agg.bound_without_predicate(_exact_filter(rows, predicate), column)
