"""Multi-level replication: hierarchies of caches (paper §8.1 extension).

The paper sketches TRAPP over cache *hierarchies* — each object lives at
one source with a chain of caches between it and the user (the Web-caching
architecture): "Refreshes would then occur between a cache and the caches
or sources one level below, with a possible cascading effect."

:class:`HierarchicalCache` implements one level of such a chain:

* it holds, per object, the bound it last obtained from its **parent**
  (a source-backed :class:`LevelRoot` or another ``HierarchicalCache``),
  widened by its own staleness policy;
* it implements the executor's ``RefreshProvider`` interface, so queries
  run against any level;
* a query-initiated refresh asks the parent for its *current* bound; if
  the parent's own bound is wider than the child's target width, the
  request **cascades** upward, ultimately reaching the root, which reads
  the exact master value.

Invariant (tested): every level's bound for an object contains the bound
of every level below it, and hence the master value — so bounded answers
computed at any level are guaranteed, just progressively looser at higher
(more distant) levels.

Each level tracks how many refresh requests it forwarded upward, making
the cascade observable in experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

from repro.core.bound import Bound
from repro.errors import ReplicationProtocolError
from repro.storage.table import Table

__all__ = ["LevelParent", "LevelRoot", "HierarchicalCache", "build_chain"]


class LevelParent(Protocol):
    """What a hierarchy level needs from the level below it."""

    def current_bound(self, table_name: str, tid: int, column: str) -> Bound:
        """The parent's current bound for one object (no refresh)."""
        ...

    def tighten(self, table_name: str, tid: int, column: str, max_width: float) -> Bound:
        """Return a bound of width <= max_width, refreshing upward as needed."""
        ...

    def table_schema(self, table_name: str):
        ...

    def object_ids(self, table_name: str) -> list[int]:
        ...


class LevelRoot:
    """The hierarchy's root: wraps the master table (the data source)."""

    def __init__(self, master: Table) -> None:
        self.master = master
        self.exact_reads = 0

    def current_bound(self, table_name: str, tid: int, column: str) -> Bound:
        self._check(table_name)
        return Bound.exact(self.master.row(tid).number(column))

    def tighten(self, table_name: str, tid: int, column: str, max_width: float) -> Bound:
        self._check(table_name)
        self.exact_reads += 1
        return Bound.exact(self.master.row(tid).number(column))

    def table_schema(self, table_name: str):
        self._check(table_name)
        return self.master.schema

    def object_ids(self, table_name: str) -> list[int]:
        self._check(table_name)
        return self.master.tids()

    def _check(self, table_name: str) -> None:
        if table_name != self.master.name:
            raise ReplicationProtocolError(
                f"root serves table {self.master.name!r}, not {table_name!r}"
            )


@dataclass(slots=True)
class _CachedObject:
    bound: Bound


class HierarchicalCache:
    """One cache level: bounds derived from the parent, widened by slack.

    ``slack`` models this level's staleness allowance: the bound stored
    here is the parent's bound widened symmetrically by ``slack`` (so the
    parent may drift that far before this level must hear about it —
    the per-level analogue of a bound function's width).  ``slack = 0``
    makes the level a transparent mirror.
    """

    def __init__(
        self, name: str, parent: LevelParent, table_name: str, slack: float = 0.0
    ) -> None:
        if slack < 0:
            raise ReplicationProtocolError(f"slack must be non-negative, got {slack}")
        self.name = name
        self.parent = parent
        self.table_name = table_name
        self.slack = slack
        self.forwarded_refreshes = 0
        self._objects: dict[tuple[int, str], _CachedObject] = {}
        schema = parent.table_schema(table_name)
        self.table = Table(table_name, schema)
        self._populate()

    # ------------------------------------------------------------------
    def _populate(self) -> None:
        for tid in self.parent.object_ids(self.table_name):
            values = {}
            for column in self.table.schema:
                if column.is_bounded:
                    bound = self.parent.current_bound(
                        self.table_name, tid, column.name
                    ).widen(self.slack)
                    self._objects[(tid, column.name)] = _CachedObject(bound)
                    values[column.name] = bound
                else:
                    values[column.name] = self._parent_exact(tid, column.name)
            self.table.insert(values, tid=tid)

    def _parent_exact(self, tid: int, column: str):
        parent = self.parent
        # Exact/text columns replicate verbatim from the root's table.
        while isinstance(parent, HierarchicalCache):
            parent = parent.parent
        assert isinstance(parent, LevelRoot)
        return parent.master.row(tid)[column]

    # ------------------------------------------------------------------
    # LevelParent protocol (so further levels can stack on this one)
    # ------------------------------------------------------------------
    def current_bound(self, table_name: str, tid: int, column: str) -> Bound:
        self._check(table_name)
        return self._objects[(tid, column)].bound

    def tighten(self, table_name: str, tid: int, column: str, max_width: float) -> Bound:
        """Ensure this level's bound is at most ``max_width`` wide."""
        self._check(table_name)
        entry = self._objects[(tid, column)]
        if entry.bound.width <= max_width:
            return entry.bound
        # This level must hear from its parent.  The parent's bound must be
        # narrow enough that adding our slack stays within the target; the
        # parent answers from its own cache when possible and cascades
        # upward otherwise — the §8.1 cascading effect.
        parent_budget = max(0.0, max_width - 2 * self.slack)
        self.forwarded_refreshes += 1
        parent_bound = self.parent.tighten(table_name, tid, column, parent_budget)
        # Take as much staleness allowance as the target width permits: a
        # width-0 target stores the parent bound verbatim (refresh-time
        # collapse); otherwise widen up to the level's slack.
        allowance = min(self.slack, max(0.0, (max_width - parent_bound.width) / 2))
        entry.bound = parent_bound.widen(allowance)
        self.table.update_value(tid, column, entry.bound)
        return entry.bound

    def table_schema(self, table_name: str):
        self._check(table_name)
        return self.table.schema

    def object_ids(self, table_name: str) -> list[int]:
        self._check(table_name)
        return self.table.tids()

    # ------------------------------------------------------------------
    # RefreshProvider protocol (so the executor can query this level)
    # ------------------------------------------------------------------
    def refresh(self, table: Table, tids: Iterable[int]) -> None:
        """Query-initiated refresh at this level: collapse to width 0.

        Width 0 at this level forces a cascade all the way to the root
        (each intermediate level needs an exact parent bound); the bound
        stored here becomes the exact master value.
        """
        for tid in tids:
            for column in table.schema.bounded_columns:
                bound = self.tighten(self.table_name, tid, column.name, 0.0)
                if table is not self.table and tid in table:
                    table.update_value(tid, column.name, bound)

    # ------------------------------------------------------------------
    def _check(self, table_name: str) -> None:
        if table_name != self.table_name:
            raise ReplicationProtocolError(
                f"cache {self.name!r} serves table {self.table_name!r}, "
                f"not {table_name!r}"
            )

    def __repr__(self) -> str:
        return (
            f"HierarchicalCache({self.name!r}, slack={self.slack}, "
            f"{len(self.table)} objects)"
        )


def build_chain(
    master: Table, slacks: list[float], names: list[str] | None = None
) -> tuple[LevelRoot, list[HierarchicalCache]]:
    """Build a root plus a chain of cache levels with the given slacks.

    ``slacks[0]`` is the level closest to the source; the returned list is
    ordered root-adjacent first.  The last element is the leaf level users
    query.
    """
    root = LevelRoot(master)
    levels: list[HierarchicalCache] = []
    parent: LevelParent = root
    for i, slack in enumerate(slacks):
        name = names[i] if names else f"level{i + 1}"
        level = HierarchicalCache(name, parent, master.name, slack=slack)
        levels.append(level)
        parent = level
    return root, levels
