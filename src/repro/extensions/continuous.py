"""Continuous bounded queries (paper §8.1, data-visualization extension).

The paper imagines TRAPP-backed visualizations "modeled as a continuous
query in which precision constraints are formulated in the visual domain":
a dashboard keeps a bounded answer on screen, the system keeps it within
the display's precision (e.g. one pixel's worth of value), and updates are
pushed only when the rendered interval would visibly change.

:class:`ContinuousQuery` implements that loop over a cached table:

* :meth:`poll` recomputes the bounded answer, refreshing through the usual
  three-step executor whenever the constraint is violated;
* a registered listener receives the new answer only when it differs from
  the last delivered one by more than ``notify_delta`` in either endpoint
  — the visual-domain damping;
* statistics count evaluations, refreshes, and notifications so
  experiments can report the update economy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.answer import BoundedAnswer
from repro.core.bound import Bound
from repro.core.executor import QueryExecutor, RefreshProvider
from repro.core.refresh.base import CostFunc, uniform_cost
from repro.predicates.ast import Predicate
from repro.storage.table import Table

__all__ = ["ContinuousQuery"]

Listener = Callable[[BoundedAnswer], None]


@dataclass(slots=True)
class ContinuousQuery:
    """A standing bounded query with visual-domain update damping."""

    table: Table
    aggregate: str
    column: str | None
    max_width: float
    refresher: RefreshProvider
    predicate: Predicate | None = None
    cost: CostFunc = uniform_cost
    #: Minimum endpoint movement before listeners are notified.
    notify_delta: float = 0.0
    epsilon: float | None = None

    _listeners: list[Listener] = field(init=False, default_factory=list)
    _last_delivered: Bound | None = field(init=False, default=None)
    evaluations: int = field(init=False, default=0)
    notifications: int = field(init=False, default=0)
    total_refreshes: int = field(init=False, default=0)
    total_refresh_cost: float = field(init=False, default=0.0)

    def subscribe(self, listener: Listener) -> None:
        """Register a callback for visible answer changes."""
        self._listeners.append(listener)

    def poll(self) -> BoundedAnswer:
        """Re-evaluate now; refresh if needed; notify on visible change."""
        executor = QueryExecutor(refresher=self.refresher, epsilon=self.epsilon)
        answer = executor.execute(
            self.table,
            self.aggregate,
            self.column,
            self.max_width,
            self.predicate,
            self.cost,
        )
        self.evaluations += 1
        self.total_refreshes += len(answer.refreshed)
        self.total_refresh_cost += answer.refresh_cost
        if self._visibly_different(answer.bound):
            self._last_delivered = answer.bound
            self.notifications += 1
            for listener in self._listeners:
                listener(answer)
        return answer

    def _visibly_different(self, bound: Bound) -> bool:
        if self._last_delivered is None:
            return True
        previous = self._last_delivered
        return (
            abs(bound.lo - previous.lo) > self.notify_delta
            or abs(bound.hi - previous.hi) > self.notify_delta
        )

    @property
    def suppressed(self) -> int:
        """Evaluations that produced no visible change."""
        return self.evaluations - self.notifications
