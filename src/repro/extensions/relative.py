"""Relative precision constraints (paper §8.1 extension).

A relative constraint ``P`` demands final width ``≤ 2 · |A| · P`` where
``A`` is the (unknown) precise answer.  The paper's suggested reduction:
compute a first-pass bounded answer from cached data alone, derive from it
a *conservative* absolute constraint ``R ≤ 2 · |A| · P`` valid for every
``A`` in the first-pass interval, then run the ordinary machinery.

:func:`execute_relative_query` implements that two-pass strategy, plus an
iterative tightening loop for the case where the first pass straddles zero
(no useful conservative ``R`` exists until some refreshes shrink the
interval away from zero).
"""

from __future__ import annotations

from repro.core.answer import BoundedAnswer
from repro.core.bound import Bound
from repro.core.constraints import RelativePrecision
from repro.core.executor import QueryExecutor, RefreshProvider
from repro.core.refresh.base import CostFunc, uniform_cost
from repro.errors import ConstraintUnsatisfiableError
from repro.extensions.iterative import IterativeRefreshExecutor
from repro.predicates.ast import Predicate
from repro.storage.table import Table

__all__ = ["execute_relative_query"]


def execute_relative_query(
    table: Table,
    aggregate: str,
    column: str | None,
    fraction: float,
    predicate: Predicate | None = None,
    cost: CostFunc = uniform_cost,
    refresher: RefreshProvider | None = None,
    epsilon: float | None = None,
) -> BoundedAnswer:
    """Answer a query under the relative constraint ``width ≤ 2·|A|·P``.

    When the cached-only answer interval excludes zero, the conservative
    absolute budget ``2 · min|endpoint| · P`` is used directly (one batch
    round).  When it straddles zero, the iterative executor refreshes
    benefit-ordered tuples until the interval clears zero, after which the
    batch strategy finishes the job.
    """
    constraint = RelativePrecision(fraction)
    executor = QueryExecutor(refresher=refresher, epsilon=epsilon)

    # First pass over cached data only: width budget from the constraint.
    from repro.core.aggregates import get_aggregate
    from repro.predicates.ast import TruePredicate
    from repro.predicates.classify import classify

    spec = get_aggregate(aggregate)
    pred = predicate if predicate is not None else TruePredicate()
    if isinstance(pred, TruePredicate):
        first_pass = spec.bound_without_predicate(table.rows(), column)
    else:
        first_pass = spec.bound_with_classification(classify(table.rows(), pred), column)

    if not first_pass.contains(0.0):
        budget = constraint.resolve(first_pass)
        return executor.execute(table, aggregate, column, budget, predicate, cost)

    # Interval straddles zero: iteratively refresh until it clears zero or
    # collapses, then finish with the conservative budget.
    if refresher is None:
        raise ConstraintUnsatisfiableError(
            "relative constraint with a zero-straddling answer requires a "
            "refresh provider"
        )
    iterative = IterativeRefreshExecutor(refresher, cost=cost)
    refreshed: set[int] = set()
    total_cost = 0.0
    bound: Bound = first_pass
    for step in iterative.steps(table, aggregate, column, 0.0, predicate):
        bound = step.bound
        total_cost = step.cumulative_cost
        if step.refreshed_tid is not None:
            refreshed.add(step.refreshed_tid)
        if not bound.contains(0.0) or bound.is_exact:
            break

    budget = constraint.resolve(bound)
    final = executor.execute(table, aggregate, column, budget, predicate, cost)
    return BoundedAnswer(
        bound=final.bound,
        refreshed=frozenset(refreshed | set(final.refreshed)),
        refresh_cost=total_cost + final.refresh_cost,
        initial_bound=first_pass,
    )
