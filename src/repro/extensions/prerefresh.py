"""Refresh piggybacking and pre-refreshing (paper §8.3).

Two cost-amortization tactics the paper proposes:

* **Piggybacking** — when a source answers a (value- or query-initiated)
  refresh anyway, it may attach extra refreshes for objects "likely to
  need refreshing in the near future, e.g. if the precise value is very
  close to the edge of its bound."
* **Pre-refreshing** — during idle periods the source proactively
  refreshes the riskiest objects so later peak-load refreshes are avoided.

Both need the same primitive: a *risk score* for each tracked object — how
close its master value sits to its cached bound's edge, normalized by the
bound's width.  :func:`edge_risk` provides it; :class:`PiggybackPolicy`
selects the extra payload for a refresh response; :func:`pre_refresh_candidates`
ranks objects for an idle-time sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.bound import Bound
from repro.errors import TrappError

__all__ = ["edge_risk", "PiggybackPolicy", "pre_refresh_candidates"]


def edge_risk(value: float, bound: Bound) -> float:
    """How endangered a cached bound is, in [0, 1].

    0 means the master value sits at the bound's center; 1 means it sits
    on (or outside) an edge.  Zero-width bounds are at maximal risk: any
    update escapes them.
    """
    if not bound.contains(value):
        return 1.0
    if bound.width == 0:
        return 1.0
    center_distance = abs(value - bound.midpoint)
    return min(1.0, 2.0 * center_distance / bound.width)


@dataclass(frozen=True, slots=True)
class PiggybackPolicy:
    """Selects extra objects to refresh alongside a requested one.

    ``risk_threshold`` — only objects at least this endangered ride along;
    ``max_extra`` — cap on piggybacked objects per response (each one adds
    marginal transfer cost, so unbounded piggybacking would re-create the
    eager-replication regime the paper is escaping).
    """

    risk_threshold: float = 0.8
    max_extra: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.risk_threshold <= 1.0:
            raise TrappError(
                f"risk threshold must lie in [0, 1], got {self.risk_threshold}"
            )
        if self.max_extra < 0:
            raise TrappError(f"max_extra must be non-negative, got {self.max_extra}")

    def select(
        self,
        requested: set,
        tracked: Iterable[tuple[object, float, Bound]],
    ) -> list:
        """Choose piggyback keys.

        ``tracked`` yields ``(key, master_value, cached_bound)`` for every
        object the source tracks for the requesting cache; ``requested``
        are the keys already being refreshed.  Returns up to ``max_extra``
        additional keys, most endangered first.
        """
        scored = [
            (edge_risk(value, bound), key)
            for key, value, bound in tracked
            if key not in requested
        ]
        risky = sorted(
            (item for item in scored if item[0] >= self.risk_threshold),
            key=lambda item: (-item[0], repr(item[1])),
        )
        return [key for _, key in risky[: self.max_extra]]


def pre_refresh_candidates(
    tracked: Iterable[tuple[object, float, Bound]],
    budget: int,
    risk_threshold: float = 0.5,
) -> list:
    """Rank objects for an idle-time pre-refresh sweep.

    Returns up to ``budget`` keys whose risk meets the threshold, most
    endangered first — the objects most likely to cost a value-initiated
    refresh soon.
    """
    if budget < 0:
        raise TrappError(f"budget must be non-negative, got {budget}")
    scored = sorted(
        (
            (edge_risk(value, bound), key)
            for key, value, bound in tracked
            if edge_risk(value, bound) >= risk_threshold
        ),
        key=lambda item: (-item[0], repr(item[1])),
    )
    return [key for _, key in scored[:budget]]
