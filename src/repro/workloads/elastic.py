"""Load-driven elasticity for cache groups: grow and shrink from traffic.

The membership protocol (detach / snapshot admit /
:meth:`~repro.replication.sharding.ShardedSource.migrate_master`) makes a
:class:`~repro.replication.fanout.CacheGroup`'s topology a runtime
decision; :class:`GroupAutoscaler` closes the loop by *driving* it from
observed load.  The pressure signal is per-replica **admission pressure**:
queries the service routed to the group since the last control step,
divided by the member count — read straight off the service's
``trapp_routed_queries_total`` counters, so the autoscaler sees exactly
what the serving tier admitted (routed and pinned alike), not what
clients merely offered.

Control policy (deliberately classic — watermarks plus cooldown):

* pressure above ``high_watermark`` admits one snapshot-initialized
  joiner (``<group>/autoN``), up to ``max_replicas``;
* pressure below ``low_watermark`` drains and detaches the member that
  served the fewest queries in the window (cache-id tie-break), down to
  ``min_replicas``;
* actions are separated by at least ``cooldown`` simulated seconds, so
  one traffic spike cannot thrash membership faster than snapshots and
  drains settle.

Every action is recorded as a :class:`ScaleEvent` (time, direction,
cache, pressure, transfer cost) — the trajectory the elastic-group
benchmark plots and tripwires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TrappError

__all__ = ["GroupAutoscaler", "ScaleEvent"]


@dataclass(frozen=True, slots=True)
class ScaleEvent:
    """One autoscaler action, for trajectories and benchmarks."""

    at: float
    action: str  # "admit" | "detach"
    cache_id: str
    #: Per-replica admission pressure that triggered the action.
    pressure: float
    #: Members after the action took effect.
    members: int
    #: Snapshot transfer cost for admits (receipt total), 0.0 for detaches.
    transfer_cost: float = 0.0


class GroupAutoscaler:
    """Grow/shrink one cache group from observed admission pressure.

    Wraps a :class:`~repro.service.service.QueryService` and the group id
    it serves; call :meth:`step` at control-loop boundaries (between
    workload rounds, or on a timer in a live deployment).  The autoscaler
    owns only the replicas it admits (``<group>/auto0``, ``auto1``, …)
    plus detach rights over existing members; it never touches other
    groups or standalone caches.
    """

    def __init__(
        self,
        service,
        group_id: str,
        min_replicas: int = 1,
        max_replicas: int = 8,
        high_watermark: float = 8.0,
        low_watermark: float = 2.0,
        cooldown: float = 0.0,
        cost_model_factory=None,
    ) -> None:
        if min_replicas < 1:
            raise ValueError("min_replicas must be at least 1")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if low_watermark > high_watermark:
            raise ValueError("low_watermark must be <= high_watermark")
        self.service = service
        self.group_id = group_id
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.cooldown = cooldown
        #: ``cache_id -> BatchedCostModel`` for replicas this autoscaler
        #: admits; ``None`` leaves them on the scheduler's default model.
        self.cost_model_factory = cost_model_factory
        self.events: list[ScaleEvent] = []
        self._joiner_serial = 0
        self._last_action_at: float | None = None
        #: Routed-counter totals at the previous step, per member.
        self._last_totals: dict[str, float] = {}

    # ------------------------------------------------------------------
    def _served_total(self, cache_id: str) -> float:
        """Queries the service has ever routed/pinned to one replica."""
        counter = self.service._c_routed
        return (
            counter.labels(cache=cache_id, mode="routed").value
            + counter.labels(cache=cache_id, mode="pinned").value
        )

    def _window_deltas(self) -> dict[str, float]:
        """Per-member served-query deltas since the previous step."""
        group = self.service.system.group(self.group_id)
        deltas: dict[str, float] = {}
        for cache_id in group.cache_ids():
            total = self._served_total(cache_id)
            deltas[cache_id] = total - self._last_totals.get(cache_id, 0.0)
        return deltas

    def observed_pressure(self) -> float:
        """Current per-replica admission pressure (window delta / members)."""
        deltas = self._window_deltas()
        if not deltas:
            return 0.0
        return sum(deltas.values()) / len(deltas)

    # ------------------------------------------------------------------
    async def step(self) -> "ScaleEvent | None":
        """One control-loop decision; returns the action taken, if any.

        Reads the window's admission pressure, applies the watermark
        policy, and — whether or not an action fired — rolls the window
        forward so the next step measures fresh traffic only.
        """
        system = self.service.system
        group = system.group(self.group_id)
        deltas = self._window_deltas()
        members = len(deltas)
        pressure = sum(deltas.values()) / members if members else 0.0
        now = system.clock.now()

        event: ScaleEvent | None = None
        in_cooldown = (
            self._last_action_at is not None
            and now - self._last_action_at < self.cooldown
        )
        if not in_cooldown:
            if pressure > self.high_watermark and members < self.max_replicas:
                event = self._admit(now, pressure, members)
            elif pressure < self.low_watermark and members > self.min_replicas:
                event = await self._detach(now, pressure, members, deltas)
        if event is not None:
            self.events.append(event)
            self._last_action_at = now

        self._last_totals = {
            cache_id: self._served_total(cache_id)
            for cache_id in system.group(self.group_id).cache_ids()
        }
        return event

    def _admit(self, now: float, pressure: float, members: int) -> ScaleEvent:
        system = self.service.system
        while True:
            cache_id = f"{self.group_id}/auto{self._joiner_serial}"
            self._joiner_serial += 1
            try:
                system.cache(cache_id)
            except TrappError:
                break  # id is free
        receipt = self.service.admit_replica(
            self.group_id,
            cache_id,
            cost_model=(
                self.cost_model_factory(cache_id)
                if self.cost_model_factory is not None
                else None
            ),
        )
        return ScaleEvent(
            at=now,
            action="admit",
            cache_id=cache_id,
            pressure=pressure,
            members=members + 1,
            transfer_cost=receipt.total_cost,
        )

    async def _detach(
        self,
        now: float,
        pressure: float,
        members: int,
        deltas: dict[str, float],
    ) -> ScaleEvent:
        # Shed the member that served the least this window: its sticky
        # clients are the fewest to re-stick, and under fan-out lockstep
        # its bound state is not special — any member's snapshot lives on
        # in the survivors.
        victim = min(deltas, key=lambda cid: (deltas[cid], cid))
        await self.service.detach_replica(self.group_id, victim)
        self._last_totals.pop(victim, None)
        return ScaleEvent(
            at=now,
            action="detach",
            cache_id=victim,
            pressure=pressure,
            members=members - 1,
        )
