"""The volatile-stock-day workload behind the paper's Figures 5 and 6.

The paper's §5.2.1 experiments use 90 stock prices from one highly
volatile trading day: each stock's day *low* and *high* become the cached
bound ``[L_i, H_i]``, the *closing* price is the precise master value
``V_i``, and each object's refresh cost ``C_i`` is a uniform random
integer in [1, 10].

We have no access to the original quote sheet, so this module synthesizes
an equivalent day: each ticker follows an intraday geometric random walk
(``GeometricWalk``), from which the low/high/close are read off.  The
experiments depend only on the joint distribution of bound widths and
costs — not on which real companies moved — so the reproduced Figures 5
and 6 retain the paper's shapes (see DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bound import Bound
from repro.simulation.random_walk import GeometricWalk
from repro.storage.schema import Column, ColumnKind, Schema
from repro.storage.table import Table

__all__ = [
    "STOCKS_SCHEMA",
    "StockDay",
    "volatile_stock_day",
    "stock_cache_table",
    "stock_master_table",
    "stock_costs",
]


STOCKS_SCHEMA = Schema(
    [
        Column("ticker", ColumnKind.TEXT),
        Column("price", ColumnKind.BOUNDED),
        Column("cost", ColumnKind.EXACT),
    ],
    name="stocks",
)


@dataclass(frozen=True, slots=True)
class StockDay:
    """One ticker's synthesized trading day."""

    ticker: str
    low: float
    high: float
    close: float
    cost: int

    @property
    def bound(self) -> Bound:
        return Bound(self.low, self.high)

    @property
    def width(self) -> float:
        return self.high - self.low


def volatile_stock_day(
    n_stocks: int = 90,
    seed: int = 20000521,
    ticks: int = 390,
    sigma: float = 0.004,
    cost_range: tuple[int, int] = (1, 10),
) -> list[StockDay]:
    """Synthesize one volatile trading day for ``n_stocks`` tickers.

    ``ticks`` defaults to 390 (minutes in a NYSE session); ``sigma`` is the
    per-tick log-volatility, chosen so typical day ranges are several
    percent of the price — a "highly volatile" day.  Costs are uniform
    integers in ``cost_range``, matching the paper.
    """
    rng = random.Random(seed)
    days: list[StockDay] = []
    for index in range(n_stocks):
        open_price = rng.uniform(10.0, 200.0)
        walk = GeometricWalk(
            value=open_price, sigma=sigma, rng=random.Random(rng.getrandbits(64))
        )
        low = high = open_price
        price = open_price
        for _ in range(ticks):
            price = walk.advance()
            low = min(low, price)
            high = max(high, price)
        days.append(
            StockDay(
                ticker=f"SYM{index:03d}",
                low=low,
                high=high,
                close=price,
                cost=rng.randint(*cost_range),
            )
        )
    return days


def stock_cache_table(days: list[StockDay]) -> Table:
    """The cache-side table: price bounds are each day's [low, high]."""
    table = Table("stocks", STOCKS_SCHEMA)
    for day in days:
        table.insert(
            {"ticker": day.ticker, "price": day.bound, "cost": float(day.cost)}
        )
    return table


def stock_master_table(days: list[StockDay]) -> Table:
    """The source-side table: prices are the closing values."""
    table = Table("stocks", STOCKS_SCHEMA)
    for day in days:
        table.insert(
            {"ticker": day.ticker, "price": day.close, "cost": float(day.cost)}
        )
    return table


def stock_costs(days: list[StockDay]) -> dict[int, float]:
    """Tuple id → refresh cost (insertion order matches table tids)."""
    return {index + 1: float(day.cost) for index, day in enumerate(days)}
