"""Query workload generation for scaling and ablation benchmarks.

Generates randomized but reproducible TRAPP/AG query mixes over a table:
aggregate choice, precision constraint drawn from a width distribution,
and optional predicates over the table's bounded columns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.predicates.ast import ColumnRef, Comparison, Literal, Predicate
from repro.storage.table import Table

__all__ = ["QuerySpec", "QueryWorkload"]


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One generated query: aggregate, column, constraint, predicate."""

    aggregate: str
    column: str | None
    max_width: float
    predicate: Predicate | None = None

    def __str__(self) -> str:
        target = self.column or "*"
        where = f" WHERE {self.predicate}" if self.predicate is not None else ""
        return f"SELECT {self.aggregate}({target}) WITHIN {self.max_width:g}{where}"


@dataclass(slots=True)
class QueryWorkload:
    """A reproducible stream of :class:`QuerySpec` over one table.

    ``aggregates`` weights which functions appear; ``width_range`` bounds
    the precision constraints (absolute widths); ``predicate_rate`` is the
    fraction of queries carrying a bounded-column predicate.
    """

    table: Table
    numeric_column: str
    seed: int = 7
    aggregates: tuple[str, ...] = ("MIN", "MAX", "SUM", "COUNT", "AVG")
    width_range: tuple[float, float] = (1.0, 100.0)
    predicate_rate: float = 0.5
    _rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def next_query(self) -> QuerySpec:
        aggregate = self._rng.choice(self.aggregates)
        column = None if aggregate == "COUNT" else self.numeric_column
        max_width = self._rng.uniform(*self.width_range)
        predicate = None
        if self._rng.random() < self.predicate_rate:
            predicate = self._random_predicate()
        return QuerySpec(aggregate, column, max_width, predicate)

    def take(self, n: int) -> list[QuerySpec]:
        return [self.next_query() for _ in range(n)]

    def _random_predicate(self) -> Predicate:
        """A threshold comparison over the numeric column, placed near the
        middle of the column's value range so all of T+/T?/T− appear."""
        values = [row.bound(self.numeric_column) for row in self.table.rows()]
        if not values:
            return Comparison(
                ColumnRef(self.numeric_column), ">", Literal(0.0)
            )
        lows = min(b.lo for b in values)
        highs = max(b.hi for b in values)
        threshold = self._rng.uniform(lows, highs)
        op = self._rng.choice((">", "<", ">=", "<="))
        return Comparison(ColumnRef(self.numeric_column), op, Literal(threshold))
