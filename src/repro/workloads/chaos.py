"""Seeded chaos scenarios for the fault-injection harness.

The :mod:`repro.faults` injector is pure *mechanism* — it answers "is X
available at t?" from an explicit schedule.  This module is the *policy*:
a :class:`ChaosScenario` describes target fault rates, and
:func:`chaos_schedule` expands it into a deterministic window schedule —
time is sliced into fixed windows and each (component, window) pair
independently draws "faulted?" at the scenario's rate from one seeded
stream.  Same scenario + same component ids ⇒ bit-identical schedule,
which is what lets the chaos bench compare availability across outage
rates and lets a failing run be replayed exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults import (
    CacheCrash,
    FanoutDrop,
    FaultInjector,
    LatencySpike,
    OutageWindow,
)

__all__ = ["ChaosScenario", "chaos_injector", "chaos_schedule"]


@dataclass(frozen=True, slots=True)
class ChaosScenario:
    """Target fault rates for one seeded chaos run.

    Rates are *per (component, window)* probabilities: ``outage_rate=0.2``
    with a 20 s window means each source is down for ~20 % of the run's
    windows, independently.  ``crash_rate``/``drop_rate`` default to zero
    so the plain scenario exercises only the source-outage path; the
    bench and tests opt into the others explicitly.
    """

    seed: int = 17
    #: Schedule horizon, in clock seconds from ``start``.
    start: float = 0.0
    duration: float = 600.0
    #: Width of one fault window; every fault lasts exactly one window.
    window: float = 20.0
    #: P(source refuses contacts) per (source, window).
    outage_rate: float = 0.2
    #: P(source answers slowly) per (source, window).
    latency_rate: float = 0.1
    #: Extra per-contact latency drawn uniformly from this range.
    latency_delay: tuple[float, float] = (0.05, 0.5)
    #: P(fan-out push lost) per (source, cache, window).
    drop_rate: float = 0.0
    #: P(cache crashed) per (cache, window).
    crash_rate: float = 0.0


def chaos_schedule(
    source_ids: "list[str] | tuple[str, ...]",
    cache_ids: "list[str] | tuple[str, ...]",
    scenario: ChaosScenario,
) -> list[object]:
    """The scenario expanded into concrete fault windows (pure function).

    Components are visited in sorted order and all draws come from one
    ``random.Random(scenario.seed)`` stream, so the schedule depends only
    on ``(scenario, sorted ids)`` — never on dict order or wall clock.
    """
    rng = random.Random(scenario.seed)
    sources = sorted(source_ids)
    caches = sorted(cache_ids)
    faults: list[object] = []
    edge = scenario.start + scenario.duration
    start = scenario.start
    while start < edge:
        end = min(start + scenario.window, edge)
        for source_id in sources:
            if rng.random() < scenario.outage_rate:
                faults.append(OutageWindow(source_id, start, end))
            if rng.random() < scenario.latency_rate:
                faults.append(
                    LatencySpike(
                        source_id, start, end,
                        rng.uniform(*scenario.latency_delay),
                    )
                )
            for cache_id in caches:
                if rng.random() < scenario.drop_rate:
                    faults.append(
                        FanoutDrop(source_id, cache_id, start, end)
                    )
        for cache_id in caches:
            if rng.random() < scenario.crash_rate:
                faults.append(CacheCrash(cache_id, start, end))
        start = end
    return faults


def chaos_injector(system, scenario: ChaosScenario) -> FaultInjector:
    """A :class:`FaultInjector` for ``system`` loaded with the scenario.

    Targets the system's *contact-level* sources (the shard sources a
    cache actually sends refresh requests to, not sharded-namespace
    wrappers) and every cache, builds the seeded schedule, and attaches
    the injector so caches and sources consult it.
    """
    from repro.replication.source import DataSource

    source_ids = [
        source_id
        for source_id, source in system._sources.items()
        if isinstance(source, DataSource)
    ]
    cache_ids = list(system._caches)
    injector = FaultInjector(system.clock)
    injector.extend(chaos_schedule(source_ids, cache_ids, scenario))
    return injector.attach(system)
