"""Multi-client closed-loop workloads for the concurrent query service.

Generates per-client TRAPP SQL scripts with controlled *overlap*: clients
draw most queries from a shared pool (the "many users watch the same hot
aggregates" regime the paper's Figure 3 architecture assumes), mixed with
client-private queries.  Overlap is what cross-query refresh coalescing
and the result cache monetize, so it is the workload's main knob.

The closed-loop driver models interactive users: each client issues its
next query only after the previous one completes, so offered load adapts
to service latency (the standard closed-loop benchmark discipline).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.workloads.queries import QuerySpec, QueryWorkload
from repro.storage.table import Table

__all__ = ["ClientScript", "ClosedLoopResult", "closed_loop_scripts", "run_closed_loop"]


@dataclass(frozen=True, slots=True)
class ClientScript:
    """One client's query sequence, as TRAPP SQL text."""

    client_id: str
    sqls: tuple[str, ...]


@dataclass(slots=True)
class ClosedLoopResult:
    """What one closed-loop run did: per-client completions and errors."""

    completed: int = 0
    errors: int = 0
    answers: list = field(default_factory=list)


def _spec_to_sql(spec: QuerySpec, table_name: str) -> str:
    target = spec.column if spec.column is not None else "*"
    where = f" WHERE {spec.predicate}" if spec.predicate is not None else ""
    return (
        f"SELECT {spec.aggregate}({target}) WITHIN {spec.max_width:g} "
        f"FROM {table_name}{where}"
    )


def _empty_safe(spec: QuerySpec) -> QuerySpec:
    """Keep predicate queries to aggregates defined over empty matches.

    MIN/MAX/AVG over a predicate that happens to match nothing have an
    unbounded answer ([-inf, inf]) that no refresh can narrow; a random
    serving workload must not manufacture those, so predicated queries are
    mapped onto SUM (or COUNT when there is no column).
    """
    if spec.predicate is not None and spec.aggregate in ("MIN", "MAX", "AVG"):
        aggregate = "SUM" if spec.column is not None else "COUNT"
        return QuerySpec(aggregate, spec.column, spec.max_width, spec.predicate)
    return spec


def closed_loop_scripts(
    table: Table,
    numeric_column: str,
    n_clients: int,
    queries_per_client: int,
    seed: int = 11,
    overlap: float = 0.75,
    pool_size: int | None = None,
    width_range: tuple[float, float] = (1.0, 100.0),
    predicate_rate: float = 0.5,
) -> list[ClientScript]:
    """Per-client SQL scripts over one table with tunable overlap.

    A shared pool of ``pool_size`` queries (default: one per client) is
    generated first; each client then draws from the pool with probability
    ``overlap`` and otherwise receives a private query.  ``seed`` makes the
    whole workload reproducible.
    """
    rng = random.Random(seed)
    generator = QueryWorkload(
        table=table,
        numeric_column=numeric_column,
        seed=rng.getrandbits(32),
        width_range=width_range,
        predicate_rate=predicate_rate,
    )
    pool_size = pool_size if pool_size is not None else max(1, n_clients)
    pool = [
        _spec_to_sql(_empty_safe(spec), table.name)
        for spec in generator.take(pool_size)
    ]
    scripts: list[ClientScript] = []
    for index in range(n_clients):
        sqls = []
        for _ in range(queries_per_client):
            if rng.random() < overlap:
                sqls.append(rng.choice(pool))
            else:
                sqls.append(
                    _spec_to_sql(_empty_safe(generator.next_query()), table.name)
                )
        scripts.append(ClientScript(client_id=f"client-{index:02d}", sqls=tuple(sqls)))
    return scripts


async def run_closed_loop(
    issue: Callable[[str, str], Awaitable],
    scripts: list[ClientScript],
    on_error: Callable[[str, str, Exception], None] | None = None,
) -> ClosedLoopResult:
    """Drive every client's script concurrently, each client closed-loop.

    ``issue(client_id, sql)`` performs one query — against a
    :class:`~repro.service.service.QueryService` directly, or over the
    wire through a :class:`~repro.service.client.TrappClient`.  Errors are
    counted (and passed to ``on_error``) without stopping the client.
    """
    result = ClosedLoopResult()

    async def run_client(script: ClientScript) -> None:
        for sql in script.sqls:
            try:
                answer = await issue(script.client_id, sql)
            except Exception as exc:
                result.errors += 1
                if on_error is not None:
                    on_error(script.client_id, sql, exc)
            else:
                result.completed += 1
                result.answers.append(answer)

    await asyncio.gather(*(run_client(script) for script in scripts))
    return result
