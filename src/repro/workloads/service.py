"""Multi-client closed-loop workloads for the concurrent query service.

Generates per-client TRAPP SQL scripts with controlled *overlap*: clients
draw most queries from a shared pool (the "many users watch the same hot
aggregates" regime the paper's Figure 3 architecture assumes), mixed with
client-private queries.  Overlap is what cross-query refresh coalescing
and the result cache monetize, so it is the workload's main knob.

The closed-loop driver models interactive users: each client issues its
next query only after the previous one completes, so offered load adapts
to service latency (the standard closed-loop benchmark discipline).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.workloads.queries import QuerySpec, QueryWorkload
from repro.storage.table import Table

__all__ = [
    "ClientScript",
    "ClosedLoopResult",
    "build_node_table",
    "closed_loop_scripts",
    "mixed_scripts",
    "mixed_service_system",
    "regional_cache_system",
    "regional_setups",
    "run_closed_loop",
    "shard_marginals",
    "sharded_service_system",
    "sharded_sum_scripts",
]


@dataclass(frozen=True, slots=True)
class ClientScript:
    """One client's query sequence, as TRAPP SQL text."""

    client_id: str
    sqls: tuple[str, ...]


@dataclass(slots=True)
class ClosedLoopResult:
    """What one closed-loop run did: per-client completions and errors."""

    completed: int = 0
    errors: int = 0
    answers: list = field(default_factory=list)


def _spec_to_sql(spec: QuerySpec, table_name: str) -> str:
    target = spec.column if spec.column is not None else "*"
    where = f" WHERE {spec.predicate}" if spec.predicate is not None else ""
    return (
        f"SELECT {spec.aggregate}({target}) WITHIN {spec.max_width:g} "
        f"FROM {table_name}{where}"
    )


def _empty_safe(spec: QuerySpec) -> QuerySpec:
    """Keep predicate queries to aggregates defined over empty matches.

    MIN/MAX/AVG over a predicate that happens to match nothing have an
    unbounded answer ([-inf, inf]) that no refresh can narrow; a random
    serving workload must not manufacture those, so predicated queries are
    mapped onto SUM (or COUNT when there is no column).
    """
    if spec.predicate is not None and spec.aggregate in ("MIN", "MAX", "AVG"):
        aggregate = "SUM" if spec.column is not None else "COUNT"
        return QuerySpec(aggregate, spec.column, spec.max_width, spec.predicate)
    return spec


def closed_loop_scripts(
    table: Table,
    numeric_column: str,
    n_clients: int,
    queries_per_client: int,
    seed: int = 11,
    overlap: float = 0.75,
    pool_size: int | None = None,
    width_range: tuple[float, float] = (1.0, 100.0),
    predicate_rate: float = 0.5,
) -> list[ClientScript]:
    """Per-client SQL scripts over one table with tunable overlap.

    A shared pool of ``pool_size`` queries (default: one per client) is
    generated first; each client then draws from the pool with probability
    ``overlap`` and otherwise receives a private query.  ``seed`` makes the
    whole workload reproducible.
    """
    rng = random.Random(seed)
    generator = QueryWorkload(
        table=table,
        numeric_column=numeric_column,
        seed=rng.getrandbits(32),
        width_range=width_range,
        predicate_rate=predicate_rate,
    )
    pool_size = pool_size if pool_size is not None else max(1, n_clients)
    pool = [
        _spec_to_sql(_empty_safe(spec), table.name)
        for spec in generator.take(pool_size)
    ]
    scripts: list[ClientScript] = []
    for index in range(n_clients):
        sqls = []
        for _ in range(queries_per_client):
            if rng.random() < overlap:
                sqls.append(rng.choice(pool))
            else:
                sqls.append(
                    _spec_to_sql(_empty_safe(generator.next_query()), table.name)
                )
        scripts.append(ClientScript(client_id=f"client-{index:02d}", sqls=tuple(sqls)))
    return scripts


# ----------------------------------------------------------------------
# Sharded variant: one logical table partitioned across N shard sources
# ----------------------------------------------------------------------
def shard_marginals(
    n_shards: int,
    marginal_range: tuple[float, float] = (1.0, 10.0),
    source_id: str = "net",
) -> dict[str, float]:
    """Per-shard marginal refresh costs with a fan-in-independent mean.

    Shard ``i`` of ``N`` charges ``lo + (hi − lo)·(i + ½)/N`` per tuple:
    evenly spaced over ``marginal_range`` with the *same mean* at every
    fan-in (``(lo + hi)/2``), so sweeping the shard count changes only
    how much cost heterogeneity the planner can exploit — the cheapest
    shard's marginal falls as ``lo + (hi − lo)/2N`` — never the average
    price of the deployment.  This is the §8.2 regime where steering
    refresh batches toward cheap, already-contacted shards pays.
    """
    lo, hi = marginal_range
    return {
        f"{source_id}/{i}": lo + (hi - lo) * (i + 0.5) / n_shards
        for i in range(n_shards)
    }


def sharded_service_system(
    n_shards: int,
    n_links: int = 600,
    seed: int = 11,
    setup: float = 4.0,
    marginal_range: tuple[float, float] = (1.0, 10.0),
    source_id: str = "net",
    cache_id: str = "monitor",
    clock_advance: float = 50.0,
):
    """A TRAPP deployment serving one netmon table sharded N ways.

    Builds the same ``links`` master data for every fan-in (same seed ⇒
    same tuples, bounds, and widths), stripes it round-robin across
    ``n_shards`` shard sources named ``<source_id>/<i>``, and overwrites
    each link's ``cost`` column with its owning shard's marginal — the
    *per-shard cost column* that keeps CHOOSE_REFRESH on the columnar
    path (``cost_from_column("cost")`` →
    :func:`~repro.storage.columnar.harvest_candidates`) while pricing
    tuples by shard.

    Returns ``(system, cost_model)``: the system has one cache
    subscribed to the sharded table with bounds synced at
    ``clock_advance``, and the
    :class:`~repro.extensions.batching.BatchedCostModel` carries the
    matching per-shard marginals for the refresh scheduler's amortized
    accounting.
    """
    from repro.extensions.batching import BatchedCostModel
    from repro.replication.sharding import round_robin
    from repro.replication.system import TrappSystem
    from repro.workloads.netmon import build_master_table, generate_topology

    rng = random.Random(seed)
    master = build_master_table(
        generate_topology(max(2, n_links // 3), n_links, rng), rng
    )
    marginals = shard_marginals(n_shards, marginal_range, source_id)
    for row in master.rows():
        shard_id = f"{source_id}/{round_robin(row.tid, n_shards)}"
        master.update_value(row.tid, "cost", marginals[shard_id])

    system = TrappSystem()
    system.add_source(source_id, shards=n_shards).add_table(master)
    system.add_cache(cache_id, shards={"links": source_id})
    system.clock.advance(clock_advance)
    system.cache(cache_id).sync_bounds()

    lo, hi = marginal_range
    model = BatchedCostModel(
        setup=setup,
        marginal=(lo + hi) / 2,
        marginal_by_source=marginals,
    )
    return system, model


def sharded_sum_scripts(
    table: Table,
    n_clients: int,
    queries_per_client: int,
    seed: int = 11,
    removal_range: tuple[float, float] = (0.01, 0.05),
    column: str = "traffic",
) -> list[ClientScript]:
    """Per-client SUM scripts sized to the table's current total width.

    Each query's ``WITHIN`` budget asks to remove a fraction drawn from
    ``removal_range`` of the table's total bound width — small enough
    that even at high shard fan-in the cheapest shard alone can supply
    the width, which is what lets the planner and the cross-query
    rebatcher concentrate refresh batches on cheap shards.  Budgets are
    computed once against the current widths, so every fan-in of the
    same seed sees an identical workload.
    """
    total = sum(row.bound(column).width for row in table.rows())
    rng = random.Random(seed)
    scripts = []
    for index in range(n_clients):
        sqls = tuple(
            f"SELECT SUM({column}) "
            f"WITHIN {total * (1 - rng.uniform(*removal_range)):.6f} "
            f"FROM {table.name}"
            for _ in range(queries_per_client)
        )
        scripts.append(ClientScript(client_id=f"client-{index:02d}", sqls=sqls))
    return scripts


# ----------------------------------------------------------------------
# Mixed-class variant: joins, GROUP BY, TOP-N, and MEDIAN on one group
# ----------------------------------------------------------------------
def build_node_table(n_nodes: int, rng: random.Random) -> Table:
    """A master ``nodes`` table joining against netmon's ``links``.

    One row per node id with a bounded ``load`` metric — the §7 running
    example's second base table (links ⋈ nodes on ``to_node = node``).
    """
    from repro.storage.schema import Column, ColumnKind, Schema

    schema = Schema(
        [Column("node", ColumnKind.EXACT), Column("load", ColumnKind.BOUNDED)],
        name="nodes",
    )
    table = Table("nodes", schema)
    for node in range(1, n_nodes + 1):
        table.insert({"node": node, "load": rng.uniform(10.0, 100.0)})
    return table


def mixed_service_system(
    n_caches: int = 2,
    n_links: int = 120,
    seed: int = 11,
    setup: float = 5.0,
    marginal: float = 1.0,
    source_id: str = "net",
    group_id: str = "edge",
    clock_advance: float = 50.0,
):
    """A cache group serving the full query surface over links ⋈ nodes.

    Builds netmon's ``links`` master plus a ``nodes`` master on one
    source and subscribes ``n_caches`` fan-out replicas — ``edge/0`` …
    ``edge/K-1`` — to *both* tables, so every statement class the
    compiler knows (single-table aggregates, §7 joins, §8.1 GROUP BY and
    TOP-N, MEDIAN) can route to any replica.  Returns ``(system,
    cost_model)`` with bounds synced at ``clock_advance``.
    """
    from repro.extensions.batching import BatchedCostModel
    from repro.replication.system import TrappSystem
    from repro.workloads.netmon import build_master_table, generate_topology

    rng = random.Random(seed)
    n_nodes = max(2, n_links // 3)
    links = build_master_table(generate_topology(n_nodes, n_links, rng), rng)
    nodes = build_node_table(n_nodes, rng)

    system = TrappSystem()
    source = system.add_source(source_id)
    source.add_table(links)
    source.add_table(nodes)
    system.add_group(group_id)
    for c in range(n_caches):
        cache = system.add_cache(f"{group_id}/{c}", group=group_id)
        cache.subscribe_table(source, "links")
        cache.subscribe_table(source, "nodes")
    system.clock.advance(clock_advance)
    for cache in system.group(group_id):
        cache.sync_bounds()

    return system, BatchedCostModel(setup=setup, marginal=marginal)


def mixed_scripts(
    links: Table,
    nodes: Table,
    n_clients: int,
    queries_per_client: int,
    seed: int = 11,
    overlap: float = 0.75,
    pool_size: int | None = None,
) -> list[ClientScript]:
    """Per-client scripts drawing from every statement class.

    The generated pool cycles through five classes — plain SUM/AVG,
    GROUP BY, TOP-N, MEDIAN, and the links ⋈ nodes join — with WITHIN
    budgets sized from the tables' *current* total bound widths, so each
    query needs real refresh work yet stays satisfiable as bounds widen.
    Clients draw from the shared pool with probability ``overlap`` (the
    coalescing/result-cache regime), else privately.
    """
    rng = random.Random(seed)
    traffic_total = sum(r.bound("traffic").width for r in links.rows())
    latency_total = sum(r.bound("latency").width for r in links.rows())
    load_by_node = {r["node"]: r.bound("load").width for r in nodes.rows()}
    join_total = sum(load_by_node.get(r["to_node"], 0.0) for r in links.rows())
    groups: dict[object, float] = {}
    for r in links.rows():
        key = r["from_node"]
        groups[key] = groups.get(key, 0.0) + r.bound("traffic").width
    group_max = max(groups.values()) if groups else 1.0
    mean_traffic = traffic_total / max(1, len(list(links.rows())))

    def one(index: int) -> str:
        frac = rng.uniform(0.3, 0.7)
        cls = index % 5
        if cls == 0:
            agg = rng.choice(("SUM", "AVG"))
            return (
                f"SELECT {agg}(traffic) WITHIN "
                f"{frac * traffic_total * (1.0 if agg == 'SUM' else 1e-2):.6f}"
                f" FROM links"
            )
        if cls == 1:
            return (
                f"SELECT SUM(traffic) WITHIN {frac * group_max:.6f} "
                f"FROM links GROUP BY from_node"
            )
        if cls == 2:
            return (
                f"SELECT TOPN(3, traffic) WITHIN "
                f"{rng.uniform(0.5, 1.5) * mean_traffic:.6f} FROM links"
            )
        if cls == 3:
            return (
                f"SELECT MEDIAN(latency) WITHIN "
                f"{frac * latency_total / 10:.6f} FROM links"
            )
        return (
            f"SELECT SUM(load) WITHIN {frac * join_total:.6f} "
            f"FROM links, nodes WHERE to_node = node"
        )

    pool_size = pool_size if pool_size is not None else max(5, n_clients)
    pool = [one(i) for i in range(pool_size)]
    private = pool_size
    scripts: list[ClientScript] = []
    for index in range(n_clients):
        sqls = []
        for _ in range(queries_per_client):
            if rng.random() < overlap:
                sqls.append(rng.choice(pool))
            else:
                sqls.append(one(private))
                private += 1
        scripts.append(
            ClientScript(client_id=f"client-{index:02d}", sqls=tuple(sqls))
        )
    return scripts


# ----------------------------------------------------------------------
# Regional variant: K replica caches behind one group, shared shard set
# ----------------------------------------------------------------------
def regional_setups(
    n_caches: int,
    n_shards: int,
    setup_range: tuple[float, float] = (2.0, 12.0),
    source_id: str = "net",
    cache_prefix: str = "edge",
) -> dict[str, dict[str, float]]:
    """Per-(cache, shard) setup costs with a fan-out-independent mean.

    Cache ``c`` of ``K`` pays shard ``s`` a setup of
    ``lo + (hi − lo)·(((c + s) mod K) + ½)/K`` — a circulant layout: for
    every *shard* the K caches' setups are evenly spaced over
    ``setup_range`` with the *same mean* at every fan-out
    (``(lo+hi)/2``), so the deployment-wide mean is K-independent too.
    (Individual caches may average cheaper or dearer across shards when
    K exceeds the shard count — only the per-shard and deployment means
    are invariant.)  Sweeping the cache count therefore changes only how
    much *placement choice* the scheduler has — the cheapest replica's
    setup for any shard falls as ``lo + (hi − lo)/2K`` — never the
    average price of the deployment.  This is the replication regime
    where dispatching each shard's batched refresh from its nearest
    replica pays.
    """
    lo, hi = setup_range
    return {
        f"{cache_prefix}/{c}": {
            f"{source_id}/{s}": lo + (hi - lo) * (((c + s) % n_caches) + 0.5) / n_caches
            for s in range(n_shards)
        }
        for c in range(n_caches)
    }


def regional_cache_system(
    n_caches: int,
    n_shards: int = 4,
    n_links: int = 600,
    seed: int = 11,
    setup_range: tuple[float, float] = (2.0, 12.0),
    marginal: float = 1.0,
    source_id: str = "net",
    group_id: str = "edge",
    clock_advance: float = 50.0,
    fanout: bool = True,
):
    """A TRAPP deployment with K regional caches replicating one table.

    Builds the same ``links`` master data for every cache count (same
    seed ⇒ same tuples, bounds, and widths), stripes it across
    ``n_shards`` shard sources, and subscribes ``n_caches`` replica
    caches — ``edge/0`` … ``edge/K-1`` — to the sharded table through one
    :class:`~repro.replication.fanout.CacheGroup` named ``group_id``.
    Each replica carries a per-cache
    :class:`~repro.extensions.batching.BatchedCostModel` whose per-shard
    setups come from :func:`regional_setups`, so the refresh scheduler
    can dispatch every shard's batch from the cheapest replica.

    ``fanout=False`` builds the *independent-caches* ablation: same
    topology, same cost heterogeneity, but no source-side fan-out (and,
    paired with ``cross_cache=False`` on the service, no cross-cache
    coalescing) — each replica pays its own refreshes.

    Returns ``(system, default_model)``: bounds synced at
    ``clock_advance`` on every replica, and the default model carrying
    the deployment's mean setup for anything not priced per cache.
    """
    from repro.extensions.batching import BatchedCostModel
    from repro.replication.system import TrappSystem
    from repro.workloads.netmon import build_master_table, generate_topology

    rng = random.Random(seed)
    master = build_master_table(
        generate_topology(max(2, n_links // 3), n_links, rng), rng
    )

    system = TrappSystem()
    system.add_source(source_id, shards=n_shards).add_table(master)
    system.add_group(group_id, fanout=fanout)
    lo, hi = setup_range
    setups = regional_setups(
        n_caches, n_shards, setup_range, source_id, cache_prefix=group_id
    )
    for c in range(n_caches):
        cache_id = f"{group_id}/{c}"
        model = BatchedCostModel(
            setup=(lo + hi) / 2,
            marginal=marginal,
            setup_by_source=setups[cache_id],
        )
        system.add_cache(
            cache_id,
            shards={"links": source_id},
            group=group_id,
            region=f"region-{c}",
            cost_model=model,
        )
    system.clock.advance(clock_advance)
    for cache in system.group(group_id):
        cache.sync_bounds()

    default_model = BatchedCostModel(setup=(lo + hi) / 2, marginal=marginal)
    return system, default_model


async def run_closed_loop(
    issue: Callable[[str, str], Awaitable],
    scripts: list[ClientScript],
    on_error: Callable[[str, str, Exception], None] | None = None,
) -> ClosedLoopResult:
    """Drive every client's script concurrently, each client closed-loop.

    ``issue(client_id, sql)`` performs one query — against a
    :class:`~repro.service.service.QueryService` directly, or over the
    wire through a :class:`~repro.service.client.TrappClient`.  Errors are
    counted (and passed to ``on_error``) without stopping the client.
    """
    result = ClosedLoopResult()

    async def run_client(script: ClientScript) -> None:
        for sql in script.sqls:
            try:
                answer = await issue(script.client_id, sql)
            except Exception as exc:
                result.errors += 1
                if on_error is not None:
                    on_error(script.client_id, sql, exc)
            else:
                result.completed += 1
                result.answers.append(answer)

    await asyncio.gather(*(run_client(script) for script in scripts))
    return result
