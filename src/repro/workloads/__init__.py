"""Workload generators: the paper's example data and synthetic equivalents."""

from repro.workloads.chaos import ChaosScenario, chaos_injector, chaos_schedule
from repro.workloads.elastic import GroupAutoscaler, ScaleEvent
from repro.workloads.netmon import (
    LINKS_SCHEMA,
    PAPER_LINKS,
    PaperLink,
    build_master_table,
    generate_topology,
    link_walks,
    paper_costs,
    paper_example_table,
    paper_master_table,
)
from repro.workloads.queries import QuerySpec, QueryWorkload
from repro.workloads.service import (
    ClientScript,
    ClosedLoopResult,
    closed_loop_scripts,
    run_closed_loop,
)
from repro.workloads.stocks import (
    STOCKS_SCHEMA,
    StockDay,
    stock_cache_table,
    stock_costs,
    stock_master_table,
    volatile_stock_day,
)

__all__ = [
    "LINKS_SCHEMA",
    "PAPER_LINKS",
    "PaperLink",
    "paper_example_table",
    "paper_master_table",
    "paper_costs",
    "generate_topology",
    "build_master_table",
    "link_walks",
    "STOCKS_SCHEMA",
    "StockDay",
    "volatile_stock_day",
    "stock_cache_table",
    "stock_master_table",
    "stock_costs",
    "QuerySpec",
    "QueryWorkload",
    "ChaosScenario",
    "chaos_injector",
    "chaos_schedule",
    "GroupAutoscaler",
    "ScaleEvent",
    "ClientScript",
    "ClosedLoopResult",
    "closed_loop_scripts",
    "run_closed_loop",
]
