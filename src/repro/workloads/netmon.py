"""Network-monitoring workload (the paper's running example, §1.1).

Two entry points:

* :func:`paper_example_table` — the exact six-link sample table of the
  paper's Figure 2 (cached bounds, precise master values, refresh costs),
  used by the golden tests for queries Q1–Q6 and by the Figure 2/7 benches;
* :func:`generate_topology` / :func:`build_master_table` — a synthetic
  wide-area network with per-link latency/bandwidth/traffic values driven
  by random walks, used by the simulation example and ablation benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bound import Bound
from repro.simulation.random_walk import GaussianWalk
from repro.storage.schema import Column, ColumnKind, Schema
from repro.storage.table import Table

__all__ = [
    "LINKS_SCHEMA",
    "PaperLink",
    "PAPER_LINKS",
    "paper_example_table",
    "paper_master_table",
    "paper_costs",
    "generate_topology",
    "build_master_table",
    "link_walks",
]


#: Schema of the monitoring station's cached ``links`` table.  ``from_node``
#: and ``to_node`` identify the link; the three metrics are bounded; the
#: refresh cost rides along as an exact column (Figure 2 layout).
LINKS_SCHEMA = Schema(
    [
        Column("from_node", ColumnKind.EXACT),
        Column("to_node", ColumnKind.EXACT),
        Column("latency", ColumnKind.BOUNDED),
        Column("bandwidth", ColumnKind.BOUNDED),
        Column("traffic", ColumnKind.BOUNDED),
        Column("cost", ColumnKind.EXACT),
    ],
    name="links",
)


@dataclass(frozen=True, slots=True)
class PaperLink:
    """One row of the paper's Figure 2: cached bounds and precise values."""

    tid: int
    from_node: int
    to_node: int
    latency_bound: Bound
    latency_value: float
    bandwidth_bound: Bound
    bandwidth_value: float
    traffic_bound: Bound
    traffic_value: float
    cost: float


#: The six links of Figure 2, transcribed exactly.
PAPER_LINKS: tuple[PaperLink, ...] = (
    PaperLink(1, 1, 2, Bound(2, 4), 3, Bound(60, 70), 61, Bound(95, 105), 98, 3),
    PaperLink(2, 2, 4, Bound(5, 7), 7, Bound(45, 60), 53, Bound(110, 120), 116, 6),
    PaperLink(3, 3, 4, Bound(12, 16), 13, Bound(55, 70), 62, Bound(95, 110), 105, 6),
    PaperLink(4, 2, 3, Bound(9, 11), 9, Bound(65, 70), 68, Bound(120, 145), 127, 8),
    PaperLink(5, 4, 5, Bound(8, 11), 11, Bound(40, 55), 50, Bound(90, 110), 95, 4),
    PaperLink(6, 5, 6, Bound(4, 6), 5, Bound(45, 60), 45, Bound(90, 105), 103, 2),
)


def paper_example_table() -> Table:
    """The cached ``links`` table exactly as in Figure 2 (bounds)."""
    table = Table("links", LINKS_SCHEMA)
    for link in PAPER_LINKS:
        table.insert(
            {
                "from_node": link.from_node,
                "to_node": link.to_node,
                "latency": link.latency_bound,
                "bandwidth": link.bandwidth_bound,
                "traffic": link.traffic_bound,
                "cost": link.cost,
            },
            tid=link.tid,
        )
    return table


def paper_master_table() -> Table:
    """The master ``links`` table: Figure 2's precise values."""
    table = Table("links", LINKS_SCHEMA)
    for link in PAPER_LINKS:
        table.insert(
            {
                "from_node": link.from_node,
                "to_node": link.to_node,
                "latency": link.latency_value,
                "bandwidth": link.bandwidth_value,
                "traffic": link.traffic_value,
                "cost": link.cost,
            },
            tid=link.tid,
        )
    return table


def paper_costs() -> dict[int, float]:
    """Tuple id → refresh cost, as in Figure 2."""
    return {link.tid: link.cost for link in PAPER_LINKS}


# ----------------------------------------------------------------------
# Synthetic topologies
# ----------------------------------------------------------------------
def generate_topology(
    n_nodes: int, n_links: int, rng: random.Random
) -> list[tuple[int, int]]:
    """A random connected directed topology of ``n_links`` distinct links.

    A spanning chain guarantees connectivity; remaining links are sampled
    uniformly without replacement.
    """
    if n_nodes < 2:
        raise ValueError("a topology needs at least two nodes")
    min_links = n_nodes - 1
    if n_links < min_links:
        raise ValueError(
            f"{n_links} links cannot connect {n_nodes} nodes (need {min_links})"
        )
    links: list[tuple[int, int]] = [(i, i + 1) for i in range(1, n_nodes)]
    existing = set(links)
    while len(links) < n_links:
        a = rng.randrange(1, n_nodes + 1)
        b = rng.randrange(1, n_nodes + 1)
        if a != b and (a, b) not in existing:
            existing.add((a, b))
            links.append((a, b))
    return links


def build_master_table(
    links: list[tuple[int, int]], rng: random.Random
) -> Table:
    """A master ``links`` table with plausible metric values.

    Latency in [2, 20] ms, bandwidth in [40, 70] units, traffic in
    [90, 150] units — the ranges of the paper's example data — and a
    refresh cost in [1, 10] standing in for node distance.
    """
    table = Table("links", LINKS_SCHEMA)
    for from_node, to_node in links:
        table.insert(
            {
                "from_node": from_node,
                "to_node": to_node,
                "latency": rng.uniform(2.0, 20.0),
                "bandwidth": rng.uniform(40.0, 70.0),
                "traffic": rng.uniform(90.0, 150.0),
                "cost": float(rng.randint(1, 10)),
            }
        )
    return table


def link_walks(
    table: Table, rng: random.Random, volatility: float = 0.5
) -> dict[tuple[int, str], GaussianWalk]:
    """Per-(tuple, metric) random walks seeded at the master values.

    Metrics are clamped to stay physical (latency ≥ 0.1, bandwidth ≥ 1,
    traffic ≥ 0).
    """
    floors = {"latency": 0.1, "bandwidth": 1.0, "traffic": 0.0}
    walks: dict[tuple[int, str], GaussianWalk] = {}
    for row in table.rows():
        for metric, floor in floors.items():
            walks[(row.tid, metric)] = GaussianWalk(
                value=row.number(metric),
                volatility=volatility,
                rng=random.Random(rng.getrandbits(64)),
                minimum=floor,
            )
    return walks
