"""Random-walk update streams (paper Appendix A's update model).

Appendix A models each master value as a one-dimensional random walk —
small increments or decrements at each step ("escrow transactions") — and
derives the √t bound shape from the walk's √t standard-deviation growth.
This module provides that walk plus two variants used by the workloads:

* :class:`RandomWalk` — additive ±step walk, optionally clamped;
* :class:`GaussianWalk` — additive Gaussian increments (the continuum
  limit of the binomial walk);
* :class:`GeometricWalk` — multiplicative Gaussian steps, the standard
  intraday stock-price model backing the Figure 5/6 workload.

All walks draw from an injected :class:`random.Random` so experiments are
reproducible from a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["RandomWalk", "GaussianWalk", "GeometricWalk"]


@dataclass(slots=True)
class RandomWalk:
    """Additive ±``step`` random walk with optional clamping."""

    value: float
    step: float = 1.0
    rng: random.Random = field(default_factory=random.Random)
    minimum: float = -math.inf
    maximum: float = math.inf

    def __post_init__(self) -> None:
        if self.step < 0:
            raise SimulationError(f"step must be non-negative, got {self.step}")
        if self.minimum > self.maximum:
            raise SimulationError("minimum exceeds maximum")
        self.value = min(max(self.value, self.minimum), self.maximum)

    def advance(self, steps: int = 1) -> float:
        """Take ``steps`` ±step moves; returns the new value."""
        for _ in range(steps):
            delta = self.step if self.rng.random() < 0.5 else -self.step
            self.value = min(max(self.value + delta, self.minimum), self.maximum)
        return self.value


@dataclass(slots=True)
class GaussianWalk:
    """Additive walk with N(drift, volatility²) increments per step."""

    value: float
    volatility: float = 1.0
    drift: float = 0.0
    rng: random.Random = field(default_factory=random.Random)
    minimum: float = -math.inf
    maximum: float = math.inf

    def __post_init__(self) -> None:
        if self.volatility < 0:
            raise SimulationError(
                f"volatility must be non-negative, got {self.volatility}"
            )

    def advance(self, steps: int = 1) -> float:
        for _ in range(steps):
            increment = self.rng.gauss(self.drift, self.volatility)
            self.value = min(max(self.value + increment, self.minimum), self.maximum)
        return self.value


@dataclass(slots=True)
class GeometricWalk:
    """Multiplicative walk: each step multiplies by ``exp(N(mu, sigma²))``.

    The standard geometric-Brownian-motion discretization for prices;
    values stay strictly positive.
    """

    value: float
    sigma: float = 0.01
    mu: float = 0.0
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise SimulationError(
                f"geometric walk requires a positive start, got {self.value}"
            )
        if self.sigma < 0:
            raise SimulationError(f"sigma must be non-negative, got {self.sigma}")

    def advance(self, steps: int = 1) -> float:
        for _ in range(steps):
            self.value *= math.exp(self.rng.gauss(self.mu, self.sigma))
        return self.value
