"""Discrete-event simulation substrate: clock, events, walks, network."""

from repro.simulation.clock import Clock
from repro.simulation.engine import (
    QueryDriver,
    QueryRecord,
    SimulationEngine,
    UpdateDriver,
)
from repro.simulation.events import Event, EventQueue
from repro.simulation.network import LatencyNetwork
from repro.simulation.random_walk import GaussianWalk, GeometricWalk, RandomWalk

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "LatencyNetwork",
    "RandomWalk",
    "GaussianWalk",
    "GeometricWalk",
    "SimulationEngine",
    "UpdateDriver",
    "QueryDriver",
    "QueryRecord",
]
