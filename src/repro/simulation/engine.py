"""The simulation engine: updates, queries, and bookkeeping over time.

:class:`SimulationEngine` drives a :class:`~repro.replication.system.TrappSystem`
with a stream of master-value updates (from random walks) and periodic
queries, recording per-query refresh costs and per-object refresh counts.
It is the substrate for the adaptive-width and refresh-delay experiments
and for the ``network_monitoring`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.answer import BoundedAnswer
from repro.replication.messages import ObjectKey
from repro.simulation.clock import Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.replication.system import TrappSystem
from repro.simulation.events import EventQueue
from repro.simulation.random_walk import GaussianWalk, GeometricWalk, RandomWalk

__all__ = ["UpdateDriver", "QueryDriver", "SimulationEngine", "QueryRecord"]

Walk = RandomWalk | GaussianWalk | GeometricWalk


@dataclass(slots=True)
class UpdateDriver:
    """Applies one walk's steps to one master object on a fixed period."""

    source_id: str
    key: ObjectKey
    walk: Walk
    period: float = 1.0
    updates_applied: int = field(init=False, default=0)


@dataclass(slots=True)
class QueryRecord:
    """One executed query's outcome for later analysis."""

    time: float
    sql: str
    answer: BoundedAnswer


@dataclass(slots=True)
class QueryDriver:
    """Runs one SQL query against one cache on a fixed period."""

    cache_id: str
    sql: str
    period: float = 10.0
    records: list[QueryRecord] = field(init=False, default_factory=list)


class SimulationEngine:
    """Schedules update and query drivers over a TRAPP system."""

    def __init__(self, system: "TrappSystem | None" = None) -> None:
        if system is None:
            from repro.replication.system import TrappSystem

            system = TrappSystem()
        self.system = system
        self.clock: Clock = self.system.clock
        self.events = EventQueue(self.clock)
        self._update_drivers: list[UpdateDriver] = []
        self._query_drivers: list[QueryDriver] = []

    # ------------------------------------------------------------------
    def add_update_driver(self, driver: UpdateDriver) -> UpdateDriver:
        self._update_drivers.append(driver)
        self._schedule_update(driver)
        return driver

    def add_query_driver(self, driver: QueryDriver) -> QueryDriver:
        self._query_drivers.append(driver)
        self._schedule_query(driver)
        return driver

    # ------------------------------------------------------------------
    def run_until(self, when: float) -> None:
        """Advance simulated time, firing every due update and query."""
        self.events.run_until(when)

    # ------------------------------------------------------------------
    def _schedule_update(self, driver: UpdateDriver) -> None:
        def fire() -> None:
            source = self.system.source(driver.source_id)
            table = source.table(driver.key.table)
            if driver.key.tid not in table:
                return  # the object was deleted; the driver retires
            value = driver.walk.advance()
            source.apply_update(driver.key, value)
            driver.updates_applied += 1
            self.events.schedule(driver.period, fire)

        self.events.schedule(driver.period, fire)

    def _schedule_query(self, driver: QueryDriver) -> None:
        def fire() -> None:
            answer = self.system.query(driver.cache_id, driver.sql)
            driver.records.append(
                QueryRecord(time=self.clock.now(), sql=driver.sql, answer=answer)
            )
            self.events.schedule(driver.period, fire)

        self.events.schedule(driver.period, fire)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def total_updates(self) -> int:
        return sum(d.updates_applied for d in self._update_drivers)

    def total_queries(self) -> int:
        return sum(len(d.records) for d in self._query_drivers)

    def total_refresh_cost(self) -> float:
        return sum(
            record.answer.refresh_cost
            for driver in self._query_drivers
            for record in driver.records
        )
