"""A simulated message-passing network with per-channel latency.

The paper's running example is a wide-area network whose monitoring
stations refresh link metrics from remote nodes; refresh *cost* in the
optimizers "might be based on the node distance or network path latency"
(§1.3).  :class:`LatencyNetwork` models exactly that substrate: named
endpoints, per-pair latencies, and message delivery through the event
queue so value-initiated refreshes arrive after a realistic delay
(paper §8.4's "refresh delay" concern is thereby observable in
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.simulation.events import EventQueue

__all__ = ["LatencyNetwork"]

Handler = Callable[[str, object], None]


@dataclass(slots=True)
class _Endpoint:
    handler: Handler
    received: int = 0


class LatencyNetwork:
    """Named endpoints exchanging messages with configurable latency."""

    def __init__(
        self,
        events: EventQueue,
        default_latency: float = 0.0,
        default_per_item: float = 0.0,
    ) -> None:
        if default_latency < 0:
            raise SimulationError("latency must be non-negative")
        if default_per_item < 0:
            raise SimulationError("per-item cost must be non-negative")
        self.events = events
        self.default_latency = default_latency
        #: Transfer cost each carried item adds to a message's delivery
        #: delay — the physical counterpart of the §8.2 ``marginal``
        #: (``latency`` is the ``setup``).  Zero keeps the classic
        #: latency-only behavior.
        self.default_per_item = default_per_item
        self._endpoints: dict[str, _Endpoint] = {}
        self._latency: dict[tuple[str, str], float] = {}
        self._per_item: dict[tuple[str, str], float] = {}
        self.messages_sent = 0

    # ------------------------------------------------------------------
    def attach(self, name: str, handler: Handler) -> None:
        """Register an endpoint; ``handler(sender, message)`` receives."""
        if name in self._endpoints:
            raise SimulationError(f"endpoint {name!r} already attached")
        self._endpoints[name] = _Endpoint(handler)

    def set_latency(self, sender: str, receiver: str, latency: float) -> None:
        """Set the one-way latency for a directed pair."""
        if latency < 0:
            raise SimulationError("latency must be non-negative")
        self._latency[(sender, receiver)] = latency

    def latency(self, sender: str, receiver: str) -> float:
        return self._latency.get((sender, receiver), self.default_latency)

    def set_per_item_cost(self, sender: str, receiver: str, cost: float) -> None:
        """Set the per-item transfer cost for a directed pair."""
        if cost < 0:
            raise SimulationError("per-item cost must be non-negative")
        self._per_item[(sender, receiver)] = cost

    def per_item_cost(self, sender: str, receiver: str) -> float:
        return self._per_item.get((sender, receiver), self.default_per_item)

    def transfer_delay(self, sender: str, receiver: str, items: int) -> float:
        """Total delivery delay for a message carrying ``items`` items."""
        return self.latency(sender, receiver) + self.per_item_cost(
            sender, receiver
        ) * max(0, items)

    # ------------------------------------------------------------------
    def send(
        self, sender: str, receiver: str, message: object, items: int = 0
    ) -> None:
        """Deliver ``message`` after latency + per-item transfer time.

        ``items`` sizes the payload (tuples in a refresh batch); each item
        adds the pair's per-item cost to the delay, so a batched message's
        delivery time follows the §8.2 shape ``setup + marginal · k``.
        """
        if receiver not in self._endpoints:
            raise SimulationError(f"unknown endpoint {receiver!r}")
        endpoint = self._endpoints[receiver]
        self.messages_sent += 1

        def deliver() -> None:
            endpoint.received += 1
            endpoint.handler(sender, message)

        self.events.schedule(self.transfer_delay(sender, receiver, items), deliver)

    def received_count(self, name: str) -> int:
        endpoint = self._endpoints.get(name)
        return endpoint.received if endpoint else 0
