"""A simulated message-passing network with per-channel latency.

The paper's running example is a wide-area network whose monitoring
stations refresh link metrics from remote nodes; refresh *cost* in the
optimizers "might be based on the node distance or network path latency"
(§1.3).  :class:`LatencyNetwork` models exactly that substrate: named
endpoints, per-pair latencies, and message delivery through the event
queue so value-initiated refreshes arrive after a realistic delay
(paper §8.4's "refresh delay" concern is thereby observable in
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.simulation.events import EventQueue

__all__ = ["LatencyNetwork"]

Handler = Callable[[str, object], None]


@dataclass(slots=True)
class _Endpoint:
    handler: Handler
    received: int = 0


class LatencyNetwork:
    """Named endpoints exchanging messages with configurable latency."""

    def __init__(self, events: EventQueue, default_latency: float = 0.0) -> None:
        if default_latency < 0:
            raise SimulationError("latency must be non-negative")
        self.events = events
        self.default_latency = default_latency
        self._endpoints: dict[str, _Endpoint] = {}
        self._latency: dict[tuple[str, str], float] = {}
        self.messages_sent = 0

    # ------------------------------------------------------------------
    def attach(self, name: str, handler: Handler) -> None:
        """Register an endpoint; ``handler(sender, message)`` receives."""
        if name in self._endpoints:
            raise SimulationError(f"endpoint {name!r} already attached")
        self._endpoints[name] = _Endpoint(handler)

    def set_latency(self, sender: str, receiver: str, latency: float) -> None:
        """Set the one-way latency for a directed pair."""
        if latency < 0:
            raise SimulationError("latency must be non-negative")
        self._latency[(sender, receiver)] = latency

    def latency(self, sender: str, receiver: str) -> float:
        return self._latency.get((sender, receiver), self.default_latency)

    # ------------------------------------------------------------------
    def send(self, sender: str, receiver: str, message: object) -> None:
        """Deliver ``message`` after the pair's latency via the event queue."""
        if receiver not in self._endpoints:
            raise SimulationError(f"unknown endpoint {receiver!r}")
        endpoint = self._endpoints[receiver]
        self.messages_sent += 1

        def deliver() -> None:
            endpoint.received += 1
            endpoint.handler(sender, message)

        self.events.schedule(self.latency(sender, receiver), deliver)

    def received_count(self, name: str) -> int:
        endpoint = self._endpoints.get(name)
        return endpoint.received if endpoint else 0
