"""Simulated time.

Every component of a TRAPP deployment — sources stamping bound functions,
caches evaluating them, the event engine ordering deliveries — reads the
same :class:`Clock`.  Time is a plain float; units are whatever the
workload chooses (the network-monitoring example uses seconds).
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["Clock"]


class Clock:
    """A monotonically non-decreasing simulated clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """The current simulated time."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` (must be non-negative)."""
        if delta < 0:
            raise SimulationError(f"cannot advance the clock by {delta}")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump to an absolute time (must not move backwards)."""
        if when < self._now:
            raise SimulationError(
                f"cannot move the clock backwards from {self._now} to {when}"
            )
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:
        return f"Clock(t={self._now:g})"
