"""A discrete-event queue for TRAPP simulations.

Minimal but complete: events are ``(time, sequence, callback)`` triples in
a binary heap; ties break by insertion order so runs are deterministic.
The engine (:mod:`repro.simulation.engine`) layers workload scheduling on
top of this queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.simulation.clock import Clock

__all__ = ["Event", "EventQueue"]

Callback = Callable[[], None]


@dataclass(order=True, slots=True)
class Event:
    """One scheduled callback; ordering is (time, seq)."""

    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap event queue bound to a clock."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._heap: list[Event] = []
        self._seq = 0
        self.processed = 0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, delay: float, callback: Callback) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} in the past")
        return self.schedule_at(self.clock.now() + delay, callback)

    def schedule_at(self, when: float, callback: Callback) -> Event:
        """Schedule ``callback`` at an absolute time."""
        if when < self.clock.now():
            raise SimulationError(
                f"cannot schedule at {when}, before current time {self.clock.now()}"
            )
        event = Event(when, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Run the earliest pending event; False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self.processed += 1
            return True
        return False

    def run_until(self, when: float) -> int:
        """Run every event scheduled at or before ``when``; returns count."""
        ran = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > when:
                break
            self.step()
            ran += 1
        self.clock.advance_to(max(self.clock.now(), when))
        return ran

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely (bounded to catch runaway schedules)."""
        ran = 0
        while self.step():
            ran += 1
            if ran >= max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted; "
                    "likely an unbounded re-scheduling loop"
                )
        return ran
