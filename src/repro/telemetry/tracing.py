"""Per-query lifecycle tracing through the step protocol.

Every query the :class:`~repro.service.service.QueryService` runs emits
one *span* — a :class:`QueryTrace` — whose step events follow the serving
pipeline::

    admit → route → plan → coalesce → dispatch → refresh → answer

``admit``/``route`` come from the service's admission and routing layers,
``plan`` fires each time the PR 6 step protocol yields a
:class:`~repro.core.executor.PlannedRefresh`, ``coalesce``/``dispatch``
are recorded by the :class:`~repro.service.scheduler.RefreshScheduler`
tick that absorbed the plan (so a span shows exactly which shared batch
paid for it), ``refresh`` carries the cost share attributed back, and
``answer`` closes the span with the answer's width and provenance
(executed, result cache, or single-flight join).

Timestamps come from the tracer's ``clock`` callable — the deployment's
:class:`~repro.simulation.clock.Clock` under simulation (deterministic
spans) and ``time.perf_counter`` for live wall-clock serving.  Completed
spans land in a fixed-capacity ring buffer served by the ``trace`` wire
op; a disabled tracer hands out one shared null span so instrumented code
stays allocation-free.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Callable

__all__ = ["Tracer", "QueryTrace", "STEP_ORDER"]

#: The canonical step vocabulary, in pipeline order (documented in
#: docs/OBSERVABILITY.md; the ``trace`` op emits steps in event order).
STEP_ORDER = (
    "admit", "route", "classify", "plan", "coalesce", "dispatch", "refresh",
    "degraded", "answer",
)


class _NullTrace:
    """The disabled tracer's span: records nothing."""

    __slots__ = ()

    def step(self, name: str, **fields) -> None:
        pass

    def finish(self, status: str = "ok", **fields) -> None:
        pass


_NULL_TRACE = _NullTrace()


class QueryTrace:
    """One query's span: identity plus an ordered list of step events."""

    __slots__ = (
        "trace_id", "client_id", "sql", "cache_id",
        "started_at", "finished_at", "status", "steps", "_tracer",
    )

    def __init__(
        self, tracer: "Tracer", trace_id: int, client_id: str, sql: str
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.client_id = client_id
        self.sql = sql
        self.cache_id = ""
        self.started_at = tracer.clock()
        self.finished_at: float | None = None
        self.status = "in-flight"
        self.steps: list[dict] = []

    def step(self, name: str, **fields) -> None:
        """Record one pipeline event at the current clock reading."""
        event = {"step": name, "at": self._tracer.clock()}
        if fields:
            event.update(fields)
        self.steps.append(event)
        if name == "route" and "cache" in fields:
            self.cache_id = str(fields["cache"])

    def finish(self, status: str = "ok", **fields) -> None:
        """Close the span (idempotent) and commit it to the ring buffer."""
        if self.finished_at is not None:
            return
        self.finished_at = self._tracer.clock()
        self.status = status
        if fields:
            self.step("answer", **fields)
        self._tracer._commit(self)

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "client": self.client_id,
            "sql": self.sql,
            "cache": self.cache_id,
            "status": self.status,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "steps": list(self.steps),
        }


class Tracer:
    """A ring buffer of completed query spans.

    ``capacity`` bounds memory on a long-running server; the ``trace``
    wire op reads the most recent spans, newest last.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capacity: int = 256,
        enabled: bool = True,
    ) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self.enabled = enabled
        self._spans: deque[QueryTrace] = deque(maxlen=capacity)
        self._ids = itertools.count(1)

    def start(self, client_id: str, sql: str) -> "QueryTrace | _NullTrace":
        """Open a span for one query; returns the null span when disabled."""
        if not self.enabled:
            return _NULL_TRACE
        return QueryTrace(self, next(self._ids), client_id, sql)

    def _commit(self, span: QueryTrace) -> None:
        self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def recent(
        self, limit: int | None = None, client: str | None = None
    ) -> list[dict]:
        """The newest completed spans (oldest first), optionally filtered
        by client id and truncated to the last ``limit``."""
        spans = [
            span.as_dict()
            for span in self._spans
            if client is None or span.client_id == client
        ]
        if limit is not None and limit >= 0:
            spans = spans[len(spans) - min(limit, len(spans)):]
        return spans
