"""Unified telemetry: one registry, one tracer, one snapshot (PR 7).

The paper's contribution is a measurable trade-off — refresh cost paid
vs. answer precision delivered — and this package is where the serving
stack measures it.  :class:`Telemetry` bundles the two instruments every
layer shares:

* :class:`~repro.telemetry.registry.MetricsRegistry` — labeled counters,
  gauges, and fixed-bucket histograms with a no-op fast path when
  disabled, plus pull-time collectors for live state (bound-width
  distributions, monitor violation totals);
* :class:`~repro.telemetry.tracing.Tracer` — per-query spans through the
  step protocol (admit → route → plan → coalesce → dispatch → refresh →
  answer), timestamped by the simulation clock under simulation and
  ``perf_counter`` live.

The :class:`~repro.service.service.QueryService` builds one
``Telemetry`` per deployment (or accepts one), registers the system
collectors, and serves both halves over the wire via the ``metrics`` and
``trace`` ops.  ``docs/OBSERVABILITY.md`` catalogs every metric and the
span schema.
"""

from __future__ import annotations

from typing import Callable

from repro.telemetry.collect import register_system_collectors
from repro.telemetry.exposition import render_text
from repro.telemetry.registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    DEFAULT_WIDTH_BUCKETS,
    MetricsRegistry,
)
from repro.telemetry.summary import summarize_snapshot
from repro.telemetry.tracing import STEP_ORDER, QueryTrace, Tracer

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Tracer",
    "QueryTrace",
    "STEP_ORDER",
    "render_text",
    "register_system_collectors",
    "summarize_snapshot",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_WIDTH_BUCKETS",
]


class Telemetry:
    """One deployment's registry + tracer behind a single switch.

    ``clock`` feeds the tracer's timestamps (pass the deployment's
    :meth:`simulation clock <repro.simulation.clock.Clock.now>` for
    deterministic spans; defaults to ``time.perf_counter``).
    ``enabled=False`` swaps in the no-op registry and null tracer so
    instrumented code runs unmetered.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] | None = None,
        trace_capacity: int = 256,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(
            clock=clock, capacity=trace_capacity, enabled=enabled
        )

    def observe_system(self, system) -> None:
        """Register the live-state collectors for one
        :class:`~repro.replication.system.TrappSystem` and hand every
        cache its event instruments."""
        register_system_collectors(self.registry, system)
        system.telemetry = self
        for cache in system._caches.values():
            cache.attach_telemetry(self.registry)

    def snapshot(self) -> dict:
        """The registry document served by the ``metrics`` wire op."""
        return self.registry.snapshot()

    def render_text(self) -> str:
        """Prometheus-style text exposition of the current snapshot."""
        return render_text(self.snapshot())
