"""Pull-time collectors: live system state rendered into the registry.

Counters cover *events*; some of the paper's most interesting telemetry
is *state* — the live bound-width distribution of every cached column
(the precision actually being delivered right now, §6/§8), the refresh
monitor's per-table precision-violation totals, and the replication-layer
message counters the simulation has always kept on its objects.  Walking
that state per event would be wasteful, so these run as registry
collectors: every :meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`
re-derives them from the deployment just before rendering.
"""

from __future__ import annotations

from repro.telemetry.registry import DEFAULT_WIDTH_BUCKETS, MetricsRegistry

__all__ = ["register_system_collectors"]

try:  # Bound-width snapshots ride the columnar mirror when NumPy exists.
    import numpy as np
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]


def register_system_collectors(registry: MetricsRegistry, system) -> None:
    """Wire one :class:`~repro.replication.system.TrappSystem`'s live
    state into ``registry`` (idempotent per registry/system pair)."""
    if not registry.enabled:
        return

    def collect(reg: MetricsRegistry) -> None:
        _collect_bound_widths(reg, system)
        _collect_cache_counters(reg, system)
        _collect_source_counters(reg, system)

    registry.add_collector(collect)


# ----------------------------------------------------------------------
def _collect_bound_widths(registry: MetricsRegistry, system) -> None:
    """Live (hi − lo) distribution of every cached bounded column."""
    family = registry.histogram(
        "trapp_bound_width",
        "Live bound widths of cached tuples (current precision)",
        ("cache", "table", "column"),
        buckets=DEFAULT_WIDTH_BUCKETS,
    )
    tuples_gauge = registry.gauge(
        "trapp_cached_tuples",
        "Tuples currently replicated per cached table",
        ("cache", "table"),
    )
    for cache in system._caches.values():
        for table in cache.catalog:
            tuples_gauge.labels(cache=cache.cache_id, table=table.name).set(
                len(table)
            )
            store = table.columns
            if store is None or np is None:
                continue
            for column in table.schema:
                if not column.is_bounded:
                    continue
                lo, hi = store.endpoints(column.name)
                widths = hi - lo
                edges = np.asarray(DEFAULT_WIDTH_BUCKETS, dtype=np.float64)
                counts = np.bincount(
                    np.searchsorted(edges, widths, side="left"),
                    minlength=len(edges) + 1,
                )
                family.labels(
                    cache=cache.cache_id, table=table.name, column=column.name
                ).set_snapshot(
                    counts.tolist(), float(widths.sum()), int(widths.size)
                )


def _collect_cache_counters(registry: MetricsRegistry, system) -> None:
    family = registry.gauge(
        "trapp_cache_messages",
        "Replication messages per cache (running totals)",
        ("cache", "kind"),
    )
    for cache in system._caches.values():
        cid = cache.cache_id
        family.labels(cache=cid, kind="refreshes_received").set(
            cache.refreshes_received
        )
        family.labels(cache=cid, kind="refresh_requests_sent").set(
            cache.refresh_requests_sent
        )
        family.labels(cache=cid, kind="fanout_refreshes_received").set(
            cache.fanout_refreshes_received
        )


def _collect_source_counters(registry: MetricsRegistry, system) -> None:
    refreshes = registry.gauge(
        "trapp_source_refreshes",
        "Refreshes answered per source, by protocol reason",
        ("source", "kind"),
    )
    violations = registry.gauge(
        "trapp_precision_violations",
        "Bound violations detected by each source's refresh monitor",
        ("source", "table"),
    )
    seen: set[int] = set()
    for source in system._sources.values():
        monitor = getattr(source, "monitor", None)
        if monitor is None or id(source) in seen:
            continue  # ShardedSource wrappers re-expose their shards
        seen.add(id(source))
        sid = source.source_id
        refreshes.labels(source=sid, kind="query_initiated").set(
            source.query_initiated_refreshes
        )
        refreshes.labels(source=sid, kind="value_initiated").set(
            source.value_initiated_refreshes
        )
        refreshes.labels(source=sid, kind="fanout").set(source.fanout_refreshes)
        refreshes.labels(source=sid, kind="piggybacked").set(
            source.piggybacked_refreshes
        )
        for table_name, count in sorted(monitor.violation_counts().items()):
            violations.labels(source=sid, table=table_name).set(count)
