"""The metrics registry: labeled counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` is the single source of truth for every
counter the serving stack maintains (PR 7).  Components create *families*
(``registry.counter("trapp_queries_total")``) and record against
labeled *children* (``family.labels(cache="edge/0").inc()``); the
registry renders everything into one JSON-able snapshot for the wire
``metrics`` op and the Prometheus-style text exposition
(:mod:`repro.telemetry.exposition`).

Two properties matter for the hot path:

* **no-op fast path** — a registry built with ``enabled=False`` hands out
  a shared null instrument whose ``inc``/``observe``/``set`` do nothing
  and whose ``labels()`` returns itself, so instrumented code pays one
  attribute call and no allocation when telemetry is off;
* **pull-time collectors** — state that is expensive or racy to track per
  event (live bound-width distributions, monitor violation counts) is
  produced by collector callbacks run at :meth:`MetricsRegistry.snapshot`
  time, the Prometheus custom-collector idiom.

Histograms use *fixed* bucket boundaries chosen at family creation; the
``le`` edges are cumulative upper bounds with an implicit ``+Inf``
terminal bucket, exactly the Prometheus semantics.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import TrappError

__all__ = [
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_WIDTH_BUCKETS",
]

#: Latency-shaped edges (seconds): microseconds through tens of seconds.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
#: Count-shaped edges (batch sizes, plans per tick).
DEFAULT_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
#: Bound-width-shaped edges (answer precision; workload units).
DEFAULT_WIDTH_BUCKETS = (
    0.0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
)


class _NullChild:
    """The disabled-registry instrument: every operation is a no-op."""

    __slots__ = ()

    def labels(self, **_labels: str) -> "_NullChild":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def set_snapshot(
        self, counts: Sequence[int], total: float, count: int | None = None
    ) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def total(self) -> float:
        return 0.0


_NULL = _NullChild()


class _Value:
    """A counter/gauge child: one float per label set."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class _HistogramChild:
    """One label set's fixed-bucket histogram (cumulative on render)."""

    __slots__ = ("_edges", "_counts", "_sum", "_count")

    def __init__(self, edges: tuple[float, ...]) -> None:
        self._edges = edges
        # counts[i] = observations in (edges[i-1], edges[i]]; the last
        # slot is the +Inf overflow bucket.
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self._edges, value)] += 1
        self._sum += value
        self._count += 1

    def set_snapshot(
        self, counts: Sequence[int], total: float, count: int | None = None
    ) -> None:
        """Replace the histogram with an externally computed distribution.

        Collector-produced histograms (live bound-width snapshots) are
        re-derived whole at scrape time rather than observed
        incrementally; ``counts`` are per-bucket (not cumulative) and
        must cover the ``+Inf`` overflow slot.
        """
        if len(counts) != len(self._counts):
            raise TrappError(
                f"histogram snapshot carries {len(counts)} buckets, "
                f"expected {len(self._counts)}"
            )
        self._counts = [int(c) for c in counts]
        self._sum = float(total)
        self._count = sum(self._counts) if count is None else int(count)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for edge, bucket in zip(self._edges, self._counts):
            running += bucket
            out.append((edge, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out


class _Family:
    """One named metric family; children are keyed by their label values."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels: str) -> object:
        if set(labels) != set(self.labelnames):
            raise TrappError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = (
                _HistogramChild(self.buckets)
                if self.kind == "histogram"
                else _Value()
            )
            self._children[key] = child
        return child

    # Label-less convenience: family-level calls hit the () child.
    def _default(self) -> object:
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def total(self) -> float:
        return self._default().total

    def samples(self) -> list[dict]:
        out = []
        for key in sorted(self._children):
            child = self._children[key]
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                out.append(
                    {
                        "labels": labels,
                        "buckets": [
                            [_json_edge(le), count]
                            for le, count in child.buckets()
                        ],
                        "sum": child.total,
                        "count": child.count,
                    }
                )
            else:
                out.append({"labels": labels, "value": child.value})
        return out


def _json_edge(le: float) -> "float | str":
    """Bucket upper bounds as strict JSON (``+Inf`` as a string)."""
    return "+Inf" if le == float("inf") else le


class MetricsRegistry:
    """Every telemetry instrument of one deployment, behind one snapshot.

    ``enabled=False`` swaps every instrument for a shared no-op, so a
    latency-sensitive deployment can run unmetered without touching the
    instrumented call sites (the overhead tripwire in
    ``scripts/check_bench_tripwires.py`` keeps the *enabled* path honest
    too).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []
        # Families and children are created lazily from async handlers
        # and (in live deployments) loop callbacks; creation is the only
        # structural mutation, so one lock suffices.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ):
        return self._family(name, "counter", help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ):
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        return self._family(
            name, "histogram", help_text, labelnames,
            buckets=tuple(float(edge) for edge in buckets),
        )

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Iterable[str],
        buckets: tuple[float, ...] | None = None,
    ):
        if not self.enabled:
            return _NULL
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise TrappError(
                        f"metric {name!r} re-registered as {kind} with labels "
                        f"{labelnames!r}; it is a {family.kind} with "
                        f"{family.labelnames!r}"
                    )
                return family
            family = _Family(name, kind, help_text, labelnames, buckets)
            self._families[name] = family
            return family

    # ------------------------------------------------------------------
    def add_collector(self, collect: Callable[["MetricsRegistry"], None]) -> None:
        """Register a pull-time callback run before every snapshot.

        Collectors write gauges/histogram snapshots describing *current*
        state (live bound widths, monitor violation totals) — state that
        would be wasteful to maintain per event.
        """
        if self.enabled:
            self._collectors.append(collect)

    def get(self, name: str):
        """The named family, or ``None`` (disabled registries hold none)."""
        return self._families.get(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The registry as one JSON-able document (the ``metrics`` op)."""
        for collect in self._collectors:
            collect(self)
        families = []
        with self._lock:
            ordered = sorted(self._families)
        for name in ordered:
            family = self._families[name]
            families.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": family.samples(),
                }
            )
        return {"enabled": self.enabled, "families": families}

    def value_of(self, name: str, **labels: str) -> float:
        """One child's current value (0 when absent) — test/report sugar."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        key = tuple(str(labels.get(ln, "")) for ln in family.labelnames)
        child = family._children.get(key)
        if child is None:
            return 0.0
        return child.value if family.kind != "histogram" else child.total
