"""Prometheus-style text exposition of a registry snapshot.

:func:`render_text` turns :meth:`MetricsRegistry.snapshot` output into
the classic ``text/plain; version=0.0.4`` format — ``# HELP`` / ``# TYPE``
headers, one ``name{label="value"} sample`` line per child, histograms
expanded into cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count``.  ``scripts/metrics_report.py`` uses this to dump a live
server's (or a freshly-run demo workload's) metrics for eyeballs or for
any Prometheus-compatible scraper pointed at the output.
"""

from __future__ import annotations

__all__ = ["render_text"]


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(labels: dict, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = [(k, labels[k]) for k in sorted(labels)] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_text(snapshot: dict) -> str:
    """One registry snapshot as Prometheus exposition text."""
    lines: list[str] = []
    for family in snapshot.get("families", ()):
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["type"] == "histogram":
                for le, count in sample["buckets"]:
                    le_str = "+Inf" if le == "+Inf" else _format_value(float(le))
                    lines.append(
                        f"{name}_bucket{_label_str(labels, (('le', le_str),))}"
                        f" {count}"
                    )
                lines.append(
                    f"{name}_sum{_label_str(labels)}"
                    f" {_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_str(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(labels)}"
                    f" {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
