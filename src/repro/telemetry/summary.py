"""Compact registry snapshots for the bench harness.

``MetricsRegistry.snapshot()`` is wire-shaped: a list of families, each
with a list of labeled samples — the right layout for the ``metrics``
op, but noisy inside a committed ``BENCH_*.json``.  This module folds a
snapshot into a stable, diff-friendly dict keyed by family name and
``k=v`` label strings, so every benchmark can persist a ``telemetry``
section with ``_merge_results({"telemetry": summarize_snapshot(...)})``
without dragging the whole exposition format along.
"""

from __future__ import annotations

__all__ = ["summarize_snapshot"]


def _label_key(labels: dict) -> str:
    """One stable string per label set; unlabeled children get ``_``."""
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "_"


def summarize_snapshot(
    snapshot: dict, prefixes: "tuple[str, ...] | None" = None
) -> dict:
    """Fold a registry snapshot into ``{family: {type, samples}}``.

    ``prefixes`` keeps only families whose name starts with one of the
    given strings (benchmarks cherry-pick the families they are about).
    Counter/gauge samples collapse to their value; histogram samples
    keep ``count``/``sum`` plus the cumulative buckets so a committed
    distribution (e.g. bound widths) stays inspectable.
    """
    families: dict[str, dict] = {}
    for family in snapshot.get("families", ()):
        name = family["name"]
        if prefixes is not None and not name.startswith(tuple(prefixes)):
            continue
        samples: dict[str, object] = {}
        for sample in family["samples"]:
            key = _label_key(sample.get("labels", {}))
            if family["type"] == "histogram":
                samples[key] = {
                    "count": sample["count"],
                    "sum": sample["sum"],
                    "buckets": sample["buckets"],
                }
            else:
                samples[key] = sample["value"]
        families[name] = {"type": family["type"], "samples": samples}
    return {"enabled": snapshot.get("enabled", False), "families": families}
