"""Per-source circuit breaker: closed → open → half-open → closed.

The scheduler keeps one breaker per source.  ``failure_threshold``
consecutive failures *open* the circuit: further contacts are skipped
outright (their tuples are marked unreached and the query degrades
instead of waiting on a dead source).  After ``cooldown`` seconds of the
breaker's clock, the next :meth:`allow` call transitions to *half-open*
and admits exactly one probe; a success closes the circuit, a failure
re-opens it for another cooldown.

The clock is injectable — the scheduler passes the simulation clock when
a :class:`~repro.faults.injector.FaultInjector` is attached, so cooldown
expiry is deterministic in replayed chaos runs.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Trip after consecutive failures; probe again after a cooldown.

    ``on_transition(old_state, new_state)`` fires on every state change —
    the scheduler wires it to the ``trapp_breaker_state`` gauge and the
    breaker-event counters.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    #: Numeric encoding for the ``trapp_breaker_state`` gauge.
    STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

    __slots__ = (
        "now",
        "failure_threshold",
        "cooldown",
        "on_transition",
        "_state",
        "_failures",
        "_opened_at",
    )

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.now = clock if clock is not None else time.monotonic
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.on_transition = on_transition
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, *without* advancing open → half-open."""
        return self._state

    @property
    def state_code(self) -> int:
        """Numeric state for gauges (0 closed, 1 open, 2 half-open)."""
        return self.STATE_CODES[self._state]

    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state and self.on_transition is not None:
            self.on_transition(old, new_state)

    def allow(self) -> bool:
        """Whether the caller may contact the source right now.

        In the open state, a call after the cooldown transitions to
        half-open and admits the caller as the single probe; while a
        probe is outstanding (half-open), further callers are refused.
        """
        if self._state == self.CLOSED:
            return True
        if self._state == self.OPEN:
            if self.now() - self._opened_at >= self.cooldown:
                self._transition(self.HALF_OPEN)
                return True
            return False
        # Half-open: one probe at a time; its outcome decides the state.
        return False

    def record_success(self) -> None:
        """A contact succeeded: close the circuit and reset the count."""
        self._failures = 0
        if self._state != self.CLOSED:
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """A contact failed: count toward the threshold, or re-open."""
        if self._state == self.HALF_OPEN:
            self._opened_at = self.now()
            self._transition(self.OPEN)
            return
        self._failures += 1
        if self._state == self.CLOSED and self._failures >= self.failure_threshold:
            self._opened_at = self.now()
            self._transition(self.OPEN)
