"""Capped exponential backoff with deterministic jitter.

A :class:`RetryPolicy` is a frozen value object: given an attempt number
and a stable key (e.g. the table being dispatched) it always computes the
same delay, so retried workloads replay bit-identically.  Jitter is
derived from ``zlib.crc32`` over ``key|attempt`` — **not** :func:`hash`,
which is randomized per process — giving well-spread but reproducible
fractions in ``[-jitter, +jitter]`` around the exponential schedule.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


def _fraction(key: str, attempt: int) -> float:
    """Deterministic pseudo-random fraction in ``[0, 1)`` for jitter."""
    return zlib.crc32(f"{key}|{attempt}".encode()) / 2**32


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How (and how long) to retry a failed source batch.

    ``max_attempts`` counts total contacts (1 = no retries).  Delays
    follow ``base_delay * multiplier**(retry-1)`` capped at ``max_delay``,
    each scaled by a deterministic jitter factor in
    ``[1-jitter, 1+jitter]``.  ``deadline`` bounds the total wall-clock
    budget across attempts (checked by the caller between attempts);
    ``attempt_timeout`` is the per-attempt budget advisory callers such
    as the wire client apply to each individual contact.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.25
    attempt_timeout: float | None = None
    deadline: float | None = None

    def delay_for(self, retry: int, key: str = "") -> float:
        """Backoff before the ``retry``-th retry (1-based), in seconds."""
        if retry < 1:
            return 0.0
        raw = min(
            self.base_delay * self.multiplier ** (retry - 1), self.max_delay
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * _fraction(key, retry) - 1.0)
        return max(0.0, raw)

    def exhausted(self, attempt: int) -> bool:
        """Whether ``attempt`` contacts already used the whole budget."""
        return attempt >= self.max_attempts
