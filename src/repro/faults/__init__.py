"""Fault injection, retry/backoff, and circuit breaking (PR 8).

The bounded-answer model's availability story made mechanical: a
deterministic :class:`FaultInjector` schedules source outages, latency
spikes, fan-out drops, and cache crashes on the simulation clock; a
:class:`RetryPolicy` retries failed source batches with capped
exponential backoff and deterministic jitter; a per-source
:class:`CircuitBreaker` stops hammering dead sources and lets queries
degrade to their current (wider but correct) bounds instead.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.injector import (
    CacheCrash,
    FanoutDrop,
    FaultInjector,
    LatencySpike,
    OutageWindow,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "CacheCrash",
    "CircuitBreaker",
    "FanoutDrop",
    "FaultInjector",
    "LatencySpike",
    "OutageWindow",
    "RetryPolicy",
]
