"""Deterministic, clock-scheduled fault injection.

A :class:`FaultInjector` holds a *schedule* of fault windows — source
outages, per-source latency spikes, fan-out message drops, and cache
crash/restart windows — all expressed in simulation-clock seconds, so a
seeded chaos run replays bit-identically.  The injector itself is pure
mechanism: it answers "is X available at now()?"; scenario *generation*
(seeded schedules at a target outage rate) lives in
:mod:`repro.workloads.chaos`.

Attachment is non-invasive: :meth:`attach` sets the ``fault_injector``
attribute on every cache and source of a
:class:`~repro.replication.system.TrappSystem`.  Components consult it
only when present, so zero-fault runs with no injector attached execute
exactly the pre-fault code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import CacheUnavailableError, SourceUnavailableError

__all__ = [
    "CacheCrash",
    "FanoutDrop",
    "FaultInjector",
    "LatencySpike",
    "OutageWindow",
]


@dataclass(frozen=True, slots=True)
class OutageWindow:
    """``source_id`` refuses refresh requests for ``start <= now < end``."""

    source_id: str
    start: float
    end: float

    def covers(self, now: float) -> bool:
        """Whether ``now`` falls inside this window."""
        return self.start <= now < self.end


@dataclass(frozen=True, slots=True)
class LatencySpike:
    """Contacts to ``source_id`` take ``delay`` extra seconds in-window.

    The delay is *recorded* on the refresh receipt (and observed into the
    latency histogram) rather than slept, keeping runs deterministic.
    """

    source_id: str
    start: float
    end: float
    delay: float

    def covers(self, now: float) -> bool:
        """Whether ``now`` falls inside this window."""
        return self.start <= now < self.end


@dataclass(frozen=True, slots=True)
class FanoutDrop:
    """``source_id`` → ``cache_id`` fan-out pushes are lost in-window.

    Drops are applied *before* the source advances its per-cache monitor
    state, so the source keeps tracking the bound the sibling actually
    holds — the containment invariant survives; the sibling just misses
    an opportunistic tightening.
    """

    source_id: str
    cache_id: str
    start: float
    end: float

    def covers(self, now: float) -> bool:
        """Whether ``now`` falls inside this window."""
        return self.start <= now < self.end


@dataclass(frozen=True, slots=True)
class CacheCrash:
    """``cache_id`` is crashed (cannot dispatch refreshes) in-window."""

    cache_id: str
    start: float
    end: float

    def covers(self, now: float) -> bool:
        """Whether ``now`` falls inside this window."""
        return self.start <= now < self.end


class FaultInjector:
    """Clock-driven fault oracle consulted by caches and sources.

    ``clock`` is a :class:`~repro.simulation.Clock` (anything with a
    ``now()``) or a bare ``() -> float`` callable.  Faults are added via
    the ``add_*`` methods or injected one-shot with :meth:`fail_next`
    (the next ``count`` contacts to a source fail — the deterministic way
    to exercise retry-then-succeed paths).  ``events`` counts what was
    actually injected, for tests and the chaos bench report.
    """

    def __init__(self, clock: Callable[[], float] | object) -> None:
        self.now: Callable[[], float] = (
            clock.now if hasattr(clock, "now") else clock  # type: ignore[union-attr]
        )
        self._outages: dict[str, list[OutageWindow]] = {}
        self._spikes: dict[str, list[LatencySpike]] = {}
        self._drops: dict[tuple[str, str], list[FanoutDrop]] = {}
        self._crashes: dict[str, list[CacheCrash]] = {}
        self._fail_next: dict[str, int] = {}
        self.events: dict[str, int] = {
            "source_outage": 0,
            "latency_spike": 0,
            "fanout_drop": 0,
            "cache_crash": 0,
            "forced_failure": 0,
        }

    # ------------------------------------------------------------------
    # Schedule construction
    # ------------------------------------------------------------------
    def add_outage(self, window: OutageWindow) -> "FaultInjector":
        """Schedule a source outage window; returns ``self`` for chaining."""
        self._outages.setdefault(window.source_id, []).append(window)
        return self

    def add_latency_spike(self, spike: LatencySpike) -> "FaultInjector":
        """Schedule a latency spike window; returns ``self`` for chaining."""
        self._spikes.setdefault(spike.source_id, []).append(spike)
        return self

    def add_fanout_drop(self, drop: FanoutDrop) -> "FaultInjector":
        """Schedule a fan-out drop window; returns ``self`` for chaining."""
        self._drops.setdefault((drop.source_id, drop.cache_id), []).append(drop)
        return self

    def add_crash(self, crash: CacheCrash) -> "FaultInjector":
        """Schedule a cache crash window; returns ``self`` for chaining."""
        self._crashes.setdefault(crash.cache_id, []).append(crash)
        return self

    def extend(self, faults: Iterable[object]) -> "FaultInjector":
        """Add a heterogeneous iterable of fault windows."""
        for fault in faults:
            if isinstance(fault, OutageWindow):
                self.add_outage(fault)
            elif isinstance(fault, LatencySpike):
                self.add_latency_spike(fault)
            elif isinstance(fault, FanoutDrop):
                self.add_fanout_drop(fault)
            elif isinstance(fault, CacheCrash):
                self.add_crash(fault)
            else:
                raise TypeError(f"not a fault window: {fault!r}")
        return self

    def fail_next(self, source_id: str, count: int = 1) -> "FaultInjector":
        """Force the next ``count`` contacts to ``source_id`` to fail.

        One-shot transient faults, independent of the clock — the
        deterministic way to test a retry that then succeeds.
        """
        self._fail_next[source_id] = self._fail_next.get(source_id, 0) + count
        return self

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------
    def source_available(self, source_id: str) -> bool:
        """Whether ``source_id`` would accept a contact right now."""
        if self._fail_next.get(source_id, 0) > 0:
            return False
        now = self.now()
        return not any(
            window.covers(now) for window in self._outages.get(source_id, ())
        )

    def check_source(self, source_id: str) -> None:
        """Raise :class:`SourceUnavailableError` if the source is down."""
        budget = self._fail_next.get(source_id, 0)
        if budget > 0:
            self._fail_next[source_id] = budget - 1
            self.events["forced_failure"] += 1
            raise SourceUnavailableError(
                f"injected transient failure contacting source {source_id!r}",
                sources=(source_id,),
            )
        now = self.now()
        if any(window.covers(now) for window in self._outages.get(source_id, ())):
            self.events["source_outage"] += 1
            raise SourceUnavailableError(
                f"source {source_id!r} is in an outage window at t={now:g}",
                sources=(source_id,),
            )

    def latency_of(self, source_id: str) -> float:
        """Extra per-contact latency for ``source_id`` right now."""
        now = self.now()
        delay = sum(
            spike.delay
            for spike in self._spikes.get(source_id, ())
            if spike.covers(now)
        )
        if delay:
            self.events["latency_spike"] += 1
        return delay

    def drops_fanout(self, source_id: str, cache_id: str) -> bool:
        """Whether a fan-out push source→cache is dropped right now."""
        windows = self._drops.get((source_id, cache_id))
        if not windows:
            return False
        now = self.now()
        if any(window.covers(now) for window in windows):
            self.events["fanout_drop"] += 1
            return True
        return False

    def cache_available(self, cache_id: str) -> bool:
        """Whether ``cache_id`` is up (not in a crash window) right now."""
        now = self.now()
        return not any(
            window.covers(now) for window in self._crashes.get(cache_id, ())
        )

    def check_cache(self, cache_id: str) -> None:
        """Raise :class:`CacheUnavailableError` if the cache is crashed."""
        now = self.now()
        if any(window.covers(now) for window in self._crashes.get(cache_id, ())):
            self.events["cache_crash"] += 1
            raise CacheUnavailableError(
                f"cache {cache_id!r} is crashed at t={now:g}", cache_id=cache_id
            )

    # ------------------------------------------------------------------
    def attach(self, system) -> "FaultInjector":
        """Point every cache and source of ``system`` at this injector.

        Components check ``self.fault_injector`` opportunistically, so
        detaching is just ``cache.fault_injector = None``.
        """
        for cache in system._caches.values():
            cache.fault_injector = self
        for source in system._sources.values():
            source.fault_injector = self
        # Remember the attachment on the system so components created
        # later — an elastically admitted replica, a new shard — join
        # the same fault plane instead of bypassing the chaos schedule.
        system.fault_injector = self
        return self
