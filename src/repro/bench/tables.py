"""Paper-style text rendering of experiment outputs.

Keeps the benchmark scripts free of formatting noise: fixed-width columns,
a ``Figure N`` banner, and a compact number format matching the way the
paper reports series.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "print_table", "banner"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as an aligned monospace table."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Print an aligned monospace table to stdout."""
    print(format_table(headers, rows))


def banner(title: str) -> None:
    """Print a ``Figure N``-style section banner."""
    line = "=" * max(len(title), 20)
    print(f"\n{line}\n{title}\n{line}")
