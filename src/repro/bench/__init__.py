"""Benchmark harness utilities shared by the ``benchmarks/`` scripts."""

from repro.bench.ascii_plot import ascii_plot, sparkline
from repro.bench.harness import SweepPoint, SweepResult, run_sweep
from repro.bench.tables import banner, format_table, print_table

__all__ = [
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "banner",
    "format_table",
    "print_table",
    "ascii_plot",
    "sparkline",
]
