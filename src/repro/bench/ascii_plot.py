"""Terminal plotting for experiment series.

The paper presents its evaluation as two x/y plots (Figures 5 and 6).
This module renders equivalent plots as ASCII so the benchmark scripts and
examples can show the curves inline, dependency-free.

Only what the harness needs: a scatter/line plot of one or two series over
a shared x axis, with axis labels and automatic scaling.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["ascii_plot", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline of a numeric series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for v in values:
        index = int((v - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Render one series as an ASCII scatter plot with axes.

    Points are linearly binned into a ``width``x``height`` grid; the y axis
    carries min/max tick labels, the x axis its extremes and label.
    """
    if len(xs) != len(ys):
        raise ValueError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    if not xs:
        return "(empty series)"
    finite = [(x, y) for x, y in zip(xs, ys) if math.isfinite(x) and math.isfinite(y)]
    if not finite:
        return "(no finite points)"
    fx = [p[0] for p in finite]
    fy = [p[1] for p in finite]
    x_lo, x_hi = min(fx), max(fx)
    y_lo, y_hi = min(fy), max(fy)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in finite:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker

    y_hi_label = f"{y_hi:g}"
    y_lo_label = f"{y_lo:g}"
    margin = max(len(y_hi_label), len(y_lo_label)) + 1

    lines = [f"{y_label}"]
    for i, row_cells in enumerate(grid):
        if i == 0:
            prefix = y_hi_label.rjust(margin)
        elif i == height - 1:
            prefix = y_lo_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row_cells)}")
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    x_lo_label = f"{x_lo:g}"
    x_hi_label = f"{x_hi:g}"
    gap = width - len(x_lo_label) - len(x_hi_label)
    lines.append(
        " " * (margin + 2) + x_lo_label + " " * max(1, gap) + x_hi_label
    )
    lines.append(" " * (margin + 2) + x_label.center(width))
    return "\n".join(lines)
