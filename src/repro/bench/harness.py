"""Experiment harness: parameter sweeps with timing and cost capture.

The benchmark scripts under ``benchmarks/`` use this module to run the
paper's sweeps (ε for Figure 5, R for Figure 6, plus the ablations) and to
print paper-style series.  Timing uses ``time.perf_counter`` around the
optimizer call only — matching what the paper's Figure 5 measures
("CHOOSE_REFRESH time"), not end-to-end query latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["SweepPoint", "SweepResult", "run_sweep"]


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One sweep sample: the parameter value and measured outputs."""

    parameter: float
    elapsed_seconds: float
    outputs: dict[str, float]


@dataclass(slots=True)
class SweepResult:
    """A named sweep: parameter name plus collected points."""

    name: str
    parameter_name: str
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, output: str) -> list[tuple[float, float]]:
        """(parameter, outputs[output]) pairs in sweep order."""
        return [(p.parameter, p.outputs[output]) for p in self.points]

    def times(self) -> list[tuple[float, float]]:
        """(parameter, elapsed seconds) pairs in sweep order."""
        return [(p.parameter, p.elapsed_seconds) for p in self.points]

    def column(self, output: str) -> list[float]:
        return [p.outputs[output] for p in self.points]

    def is_monotone_nonincreasing(self, output: str, tolerance: float = 1e-9) -> bool:
        """True when the output never rises as the parameter grows."""
        values = self.column(output)
        return all(b <= a + tolerance for a, b in zip(values, values[1:]))


def run_sweep(
    name: str,
    parameter_name: str,
    parameters: Sequence[float],
    run_once: Callable[[float], dict[str, float]],
    repeats: int = 1,
) -> SweepResult:
    """Execute ``run_once`` at each parameter value, timing each call.

    With ``repeats > 1`` the elapsed time is the minimum over repeats (the
    usual noise-resistant estimator) while outputs come from the last run
    (they are deterministic given the parameter).
    """
    result = SweepResult(name=name, parameter_name=parameter_name)
    for parameter in parameters:
        best_elapsed = float("inf")
        outputs: dict[str, float] = {}
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            outputs = run_once(parameter)
            best_elapsed = min(best_elapsed, time.perf_counter() - start)
        result.points.append(
            SweepPoint(
                parameter=float(parameter),
                elapsed_seconds=best_elapsed,
                outputs=outputs,
            )
        )
    return result
