"""Exception hierarchy for the TRAPP/AG reproduction.

Every error raised by this package derives from :class:`TrappError`, so
callers can catch a single base class at API boundaries.  The hierarchy
mirrors the layered architecture: storage errors, predicate/classification
errors, replication-protocol errors, query-language errors, and optimizer
errors each have their own branch.
"""

from __future__ import annotations


class TrappError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class BoundError(TrappError):
    """An interval operation was given invalid endpoints or operands.

    Raised, for example, when constructing a bound with ``lo > hi`` or with
    a NaN endpoint, or when dividing by an interval that straddles zero.
    """


class PrecisionConstraintError(TrappError):
    """A precision constraint is malformed (e.g. negative width)."""


class ConstraintUnsatisfiableError(TrappError):
    """No refresh set can satisfy the requested precision constraint.

    This should not occur for the standard aggregates (refreshing every
    tuple always yields an exact answer), but defensive code paths raise it
    rather than returning an answer that silently violates the constraint.
    """


class SchemaError(TrappError):
    """A table schema is malformed or a row does not match its schema."""


class UnknownColumnError(SchemaError):
    """A query or predicate referenced a column that does not exist."""

    def __init__(self, column: str, table: str | None = None) -> None:
        where = f" in table {table!r}" if table else ""
        super().__init__(f"unknown column {column!r}{where}")
        self.column = column
        self.table = table


class UnknownTableError(TrappError):
    """A query referenced a table not present in the catalog."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table {table!r}")
        self.table = table


class DuplicateKeyError(TrappError):
    """An insert would duplicate an existing primary key."""


class PredicateError(TrappError):
    """A predicate expression is malformed or cannot be evaluated."""


class PredicateTypeError(PredicateError):
    """A predicate compared incompatible types (e.g. bound vs string)."""


class ReplicationProtocolError(TrappError):
    """The source/cache protocol was violated (e.g. refresh for an object
    the source does not own, or a cache registering twice)."""


class StaleBoundError(ReplicationProtocolError):
    """A master value escaped its cached bound without a refresh.

    The TRAPP contract obligates sources to send a value-initiated refresh
    the moment a master value exceeds any cached bound; this error is the
    simulator's assertion that the contract held.
    """


class SqlSyntaxError(TrappError):
    """The TRAPP SQL dialect parser rejected the input text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class OptimizerError(TrappError):
    """A CHOOSE_REFRESH optimizer was invoked with inconsistent inputs."""


class SimulationError(TrappError):
    """The discrete-event simulation reached an inconsistent state."""


class ServiceError(TrappError):
    """The concurrent query service rejected or failed a request."""


class AdmissionError(ServiceError):
    """Admission control rejected a query before execution (e.g. the
    requested precision is tighter than the client's floor)."""


class ServiceOverloadError(AdmissionError):
    """A client exceeded its in-flight query allowance."""


class StaleRefreshError(ServiceError):
    """A suspended query's planned refresh was invalidated mid-flight.

    The service's bound-staleness cap (``max_sync_deferrals``) forced a
    ``sync_bounds`` while this query sat suspended at a refresh tick, the
    widened bounds survived its refresh, and re-validation found the final
    answer no longer meets the precision constraint.  The query was
    aborted rather than answered too wide; it is safe to retry (the
    service itself retries once before surfacing this error).
    """

    retryable = True


class FaultError(TrappError):
    """A component was unreachable (injected or real infrastructure fault).

    The serving layers convert these into per-source failure receipts,
    retries, failover dispatches, and finally *degraded* answers — bounds
    that are wider than requested but still guaranteed to contain the
    true value.  Only a constraint that strictly requires an exact value
    from a dead component surfaces one of these to the caller.
    """


class SourceUnavailableError(FaultError):
    """A data source could not be contacted for a refresh.

    Raised by :meth:`DataCache.refresh` (the serial protocol path) and by
    the executor when a precision constraint of width 0 requires exact
    values that only an unreachable source holds.  ``sources`` names the
    unreachable source(s).
    """

    def __init__(self, message: str, sources: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.sources = sources


class CircuitOpenError(SourceUnavailableError):
    """A source contact was skipped because its circuit breaker is open.

    Semantically a :class:`SourceUnavailableError` — the source is being
    treated as down — but distinguishable for callers that want to know
    no network attempt was actually made.
    """


class CacheUnavailableError(FaultError):
    """A cache replica is crashed/restarting and cannot serve refreshes.

    The scheduler catches this during group dispatch and fails over to
    the next-cheapest subscribed replica
    (:meth:`CacheGroup.leader_for_source` with ``exclude=``).
    """

    def __init__(self, message: str, cache_id: str | None = None) -> None:
        super().__init__(message)
        self.cache_id = cache_id


class WireProtocolError(ServiceError):
    """A malformed message arrived on the NDJSON wire protocol."""


class WireTimeoutError(ServiceError):
    """The server did not reply within the client's deadline.

    Raised by :class:`~repro.service.client.TrappClient` after the
    configured per-request deadline elapses and a single bounded
    reconnect attempt has also failed — instead of hanging forever on a
    dead server.
    """


class RemoteQueryError(ServiceError):
    """The server reported a query failure over the wire.

    ``kind`` carries the server-side exception class name so clients can
    distinguish admission rejections from execution errors.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
