"""Cross-query *and* cross-cache refresh coalescing (paper §8.2 scaled out).

Each in-flight query suspends at its refresh point
(:meth:`~repro.core.executor.QueryExecutor.execute_steps` yields a
:class:`~repro.core.executor.PlannedRefresh`) and submits the plan here.
The scheduler buffers submissions for one *tick*, then:

1. **clusters** the tick's plans: plans against caches replicating within
   one :class:`~repro.replication.fanout.CacheGroup` share a cluster per
   table (their refreshes are interchangeable — source-side fan-out hands
   any replica's refreshed values to every sibling), while standalone
   caches cluster alone per (cache, table) exactly as before;
2. **rebatches** each plan that carries SUM metadata toward sources the
   cluster already pays setup for
   (:func:`repro.extensions.batching.rebatch_plan` with a tick-aware cost
   model whose sunk setups are free) — with a group cluster, a source
   another *cache's* query contacts this tick counts as sunk too;
3. **merges** the cluster per *source* and deduplicates tuple ids — N
   queries wanting the same hot tuples trigger one refresh even when they
   run against different replicas;
4. dispatches one batched request per source through the *cheapest
   subscribed replica* (per-cache cost models: a regional cache near a
   shard pays less for its round trip), paying the amortized
   ``setup + marginal · k`` price once for the whole group — fan-out then
   tightens every sibling's bounds from the same message;
5. **attributes** the cost actually paid back to the queries: each
   source's setup is split evenly among the queries that used it, each
   tuple's marginal cost evenly among the queries that requested it; and
6. reports every dispatched (caches, table, tuple ids) batch to
   ``on_refresh`` so the service can proactively invalidate result-cache
   entries whose plans read the refreshed table.

Every query then resumes step 3 of its pipeline against the now-refreshed
cache.  Refreshing the union of plans only ever *narrows* bounds beyond
what each query planned for — on the query's own cache directly, on
sibling replicas through fan-out — so per-query precision guarantees
survive coalescing unchanged (property-tested in
``tests/service/test_concurrency_equivalence.py`` and, across replicas,
``tests/property/test_group_equivalence.py``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.executor import PlannedRefresh
from repro.core.refresh.base import RefreshPlan
from repro.errors import CacheUnavailableError
from repro.extensions.batching import BatchedCostModel, rebatch_plan
from repro.faults.breaker import CircuitBreaker
from repro.faults.retry import RetryPolicy
from repro.replication.cache import DataCache
from repro.storage.row import Row
from repro.storage.table import Table
from repro.telemetry.registry import DEFAULT_SIZE_BUCKETS, MetricsRegistry

__all__ = ["RefreshScheduler", "SchedulerStats"]

#: ``(tightened caches, table name, refreshed tids)`` — fired after each
#: dispatched batch so the serving layer can invalidate derived state
#: (cached answers) that read the refreshed table.
RefreshListener = Callable[[list[DataCache], str, frozenset[int]], None]

#: Attribute name → ``trapp_scheduler_events_total`` event label.  The
#: historical counter API (``stats.ticks`` etc.) is preserved as a thin
#: view over these registry children.
_STAT_EVENTS = {
    "ticks": "tick",
    "plans_submitted": "plan_submitted",
    #: Tuple refreshes the queries asked for (pre-dedup, pre-rebatch).
    "tuples_requested": "tuple_requested",
    #: Distinct tuples actually refreshed after merging.
    "tuples_refreshed": "tuple_refreshed",
    "source_requests": "source_request",
    #: Clusters (one per group × table per tick) in which plans from two
    #: or more *different* caches merged into shared source messages —
    #: may exceed ``ticks`` when one tick carries several such tables.
    "cross_cache_merges": "cross_cache_merge",
    #: Source batches dispatched through a cheaper sibling replica than
    #: the one the requesting query ran against.
    "leader_redirects": "leader_redirect",
    #: ``on_refresh`` listener invocations that raised (the refresh
    #: itself succeeded; the invalidation hook is broken).
    "listener_errors": "listener_error",
    #: Adaptive-tick adjustments (0 unless ``adaptive_tick`` is on).
    "tick_grows": "tick_grow",
    "tick_shrinks": "tick_shrink",
}


class SchedulerStats:
    """Counters describing how much coalescing actually happened.

    Since PR 7 this is a *view* over the telemetry registry, not parallel
    bookkeeping: reads and ``+=`` mutations hit the same
    ``trapp_scheduler_events_total`` / ``trapp_refresh_cost_paid_total``
    children the ``metrics`` wire op serves, so the two surfaces cannot
    drift.  (With a disabled registry every counter reads 0.)
    """

    __slots__ = ("_children",)

    def __init__(self, registry: MetricsRegistry) -> None:
        events = registry.counter(
            "trapp_scheduler_events_total",
            "Refresh-scheduler coalescing events",
            ("event",),
        )
        children = {
            attr: events.labels(event=label)
            for attr, label in _STAT_EVENTS.items()
        }
        children["total_cost_paid"] = registry.counter(
            "trapp_refresh_cost_paid_total",
            "Refresh cost paid at sources, from dispatch receipts",
        )
        object.__setattr__(self, "_children", children)

    def __getattr__(self, name: str):
        try:
            child = self._children[name]
        except KeyError:
            raise AttributeError(name) from None
        value = child.value
        return value if name == "total_cost_paid" else int(value)

    def __setattr__(self, name: str, value) -> None:
        child = self._children.get(name)
        if child is None:
            raise AttributeError(
                f"SchedulerStats has no counter {name!r}"
            )
        child.inc(value - child.value)

    def as_dict(self) -> dict[str, float]:
        return {
            name: getattr(self, name)
            for name in (*_STAT_EVENTS, "total_cost_paid")
        }


@dataclass(slots=True)
class _Pending:
    """One query's suspended refresh: its plan and the future to resume it."""

    cache: DataCache
    request: PlannedRefresh
    #: Effective tuple ids for this query (mutated by the rebatch pass).
    tids: set[int]
    future: "asyncio.Future[RefreshPlan]"
    #: The submitting query's telemetry span, or ``None`` untraced.
    trace: "object | None" = None


class _TickCostModel(BatchedCostModel):
    """Amortized costs as seen mid-tick: sunk setups are free.

    Per-source pricing *delegates* to the wrapped model — preserving
    per-source (per-shard) overrides, calibrated estimates, and
    group-projected minimum pricing alike — except sources some other
    query in the same tick already contacts charge no setup, which is
    exactly what makes pulling tuples from those sources attractive
    during cross-query rebatching.
    """

    def __init__(
        self,
        model: BatchedCostModel,
        source_of: Callable[[Row], str],
        contacted: set[str],
    ) -> None:
        super().__init__(
            setup=model.setup, marginal=model.marginal, source_of=source_of
        )
        self._base = model
        self._contacted = contacted

    def setup_for(self, source_id: str) -> float:
        return self._base.setup_for(source_id)

    def marginal_for(self, source_id: str) -> float:
        return self._base.marginal_for(source_id)

    def cost_of_set(self, rows: Iterable[Row]) -> float:
        rows = list(rows)
        sunk = {self.source_of(row) for row in rows} & self._contacted
        return super().cost_of_set(rows) - sum(
            self.setup_for(source_id) for source_id in sunk
        )


class RefreshScheduler:
    """Coalesces concurrent queries' refresh plans, tick by tick.

    ``tick_interval`` is the coalescing window in seconds; ``0`` flushes
    as soon as every currently-runnable query task has reached its refresh
    point (one trip around the event loop), which keeps simulated-clock
    tests deterministic.  ``cost_model`` enables §8.2 amortized accounting
    and cross-query rebatching; without one, costs are uniform (1 per
    tuple) and plans are only deduplicated.  ``cross_cache=True`` (the
    default) additionally merges plans across the replicas of a
    :class:`~repro.replication.fanout.CacheGroup` — per-cache cost models
    registered with the group override ``cost_model`` when pricing (and
    choosing) the replica that dispatches each source's batch.  ``False``
    keeps every cache's schedule independent (the benchmark ablation).
    ``network_delay`` simulates one source round-trip time per tick
    (round trips to distinct sources proceed in parallel), letting
    benchmarks measure the wall-clock value of coalescing, not just the
    cost-model value.
    """

    #: Smallest non-zero window the adaptive controller grows from.
    TICK_QUANTUM = 0.001

    def __init__(
        self,
        cost_model: BatchedCostModel | None = None,
        tick_interval: float = 0.0,
        rebatch: bool = True,
        rebatch_limit: int = 64,
        network_delay: float = 0.0,
        adaptive_tick: bool = False,
        tick_min: float = 0.0,
        tick_max: float = 0.05,
        cross_cache: bool = True,
        on_refresh: RefreshListener | None = None,
        registry: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_injector=None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
    ) -> None:
        self.cost_model = cost_model
        #: The telemetry registry backing :attr:`stats` and the tick /
        #: batch histograms.  A standalone scheduler (tests, benchmarks
        #: without a service) gets a private enabled registry so its
        #: counters keep working.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._h_tick_seconds = self.registry.histogram(
            "trapp_scheduler_tick_seconds",
            "Wall-clock duration of each coalescing tick",
        )
        self._h_plans_per_tick = self.registry.histogram(
            "trapp_scheduler_plans_per_tick",
            "Refresh plans coalesced per tick",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._h_batch_size = self.registry.histogram(
            "trapp_source_batch_size",
            "Tuples per dispatched source batch",
            ("source",),
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._c_source_cost = self.registry.counter(
            "trapp_refresh_cost_total",
            "Refresh cost paid per source, from dispatch receipts",
            ("source",),
        )
        self._c_leader_selected = self.registry.counter(
            "trapp_leader_selections_total",
            "Source batches dispatched through each replica",
            ("cache",),
        )
        fault_events = self.registry.counter(
            "trapp_fault_events_total",
            "Failure-handling events across the refresh pipeline",
            ("event",),
        )
        self._c_fault = {
            event: fault_events.labels(event=event)
            for event in (
                "source_failure",
                "retry",
                "breaker_skip",
                "breaker_open",
                "breaker_half_open",
                "breaker_closed",
                "failover_dispatch",
                "failover_exhausted",
                "degraded_plan",
            )
        }
        self._g_breaker = self.registry.gauge(
            "trapp_breaker_state",
            "Circuit-breaker state per source (0 closed, 1 open, 2 half-open)",
            ("source",),
        )
        self._h_source_latency = self.registry.histogram(
            "trapp_source_contact_latency_seconds",
            "Injected per-contact latency recorded on refresh receipts",
            ("source",),
        )
        self.tick_interval = tick_interval
        #: Intent flag; rebatching additionally needs a cost model for
        #: the pending's cache — the scheduler default, or a per-cache
        #: model registered with its group (see :meth:`wants_metadata_for`).
        self.rebatch = rebatch
        #: Plans larger than this skip the rebatch post-pass: rebatching
        #: probes O(plan²) candidate sets for a payoff bounded by a few
        #: setup costs, a bad trade once plans dwarf the setup/marginal
        #: ratio.
        self.rebatch_limit = rebatch_limit
        self.network_delay = network_delay
        #: Group-commit style window sizing: a tick that coalesced plans
        #: doubles the window (batching pays — wait for more company, up
        #: to ``tick_max``); a tick that fired for a lone plan halves it
        #: (nobody to coalesce with — stop taxing latency, down to
        #: ``tick_min``).
        self.adaptive_tick = adaptive_tick
        self.tick_min = tick_min
        self.tick_max = tick_max
        self.cross_cache = cross_cache
        self.on_refresh = on_refresh
        #: Backoff schedule for retrying failed source batches.  Always
        #: present (the default policy retries up to 3 contacts) — with
        #: no failures it never fires, so zero-fault runs are untouched.
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        #: The fault injector driving this deployment's chaos schedule,
        #: if any.  Only used for its deterministic clock (breaker
        #: cooldowns); the injector acts at the cache/source layer.
        self.fault_injector = fault_injector
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        #: Per-source circuit breakers, created lazily on first *failure*
        #: — a clean run never allocates one, keeping the dispatch gate a
        #: single falsy check.
        self._breakers: dict[str, CircuitBreaker] = {}
        self.stats = SchedulerStats(self.registry)
        self._pending: list[_Pending] = []
        self._flush_task: asyncio.Task | None = None
        #: Replicas leader selection must skip — the service adds a
        #: draining replica here for the detach window so no new source
        #: batch dispatches through a cache about to leave its group.
        self._excluded_leaders: set[str] = set()

    # ------------------------------------------------------------------
    def exclude_leader(self, cache_id: str) -> None:
        """Keep one replica out of leader selection (detach drain window).

        An excluded replica still serves queries already routed to it and
        still receives fan-out pushes; it just stops being chosen to
        *dispatch* source batches, so no tick holds a reference to it
        when the detach completes.  When exclusion empties a table's
        candidate pool entirely, selection falls back to ignoring the
        exclusions — dispatching through a draining replica beats
        degrading the queries.
        """
        self._excluded_leaders.add(cache_id)

    def readmit_leader(self, cache_id: str) -> None:
        """Undo :meth:`exclude_leader` (detach finished or was aborted)."""
        self._excluded_leaders.discard(cache_id)

    # ------------------------------------------------------------------
    async def submit(
        self, cache: DataCache, request: PlannedRefresh, trace=None
    ) -> RefreshPlan:
        """Queue one query's planned refresh; resolves once it is applied.

        Returns the effective plan for the submitting query: the tuple ids
        refreshed on its behalf (possibly rebatched) and the share of the
        batch cost attributed to it.  ``trace`` (a telemetry span) rides
        along so the dispatching tick can record which shared batch paid
        for this plan.
        """
        future: asyncio.Future[RefreshPlan] = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append(
            _Pending(cache, request, set(request.plan.tids), future, trace)
        )
        self.stats.plans_submitted += 1
        self.stats.tuples_requested += len(request.plan.tids)
        if self._flush_task is None:
            self._flush_task = asyncio.create_task(self._flush())
        return await future

    # ------------------------------------------------------------------
    async def _flush(self) -> None:
        try:
            if self.tick_interval > 0:
                await asyncio.sleep(self.tick_interval)
            else:
                # One trip around the event loop lets every already-started
                # query task reach its submit point before the tick fires.
                await asyncio.sleep(0)
            while self._pending:
                batch, self._pending = self._pending, []
                await self._run_tick(batch)
        finally:
            self._flush_task = None

    def _cluster_key(self, pending: _Pending) -> tuple[object, str]:
        """Plans sharing a key may merge into shared source messages.

        Replicas of a fan-out group are interchangeable refresh targets,
        so their plans cluster per (group, table); a standalone cache (or
        a group whose fan-out is off) clusters alone, preserving the
        classic per-cache behavior.
        """
        group = getattr(pending.cache, "group", None)
        if (
            self.cross_cache
            and group is not None
            and group.fanout
        ):
            return (group.group_id, pending.request.table.name)
        return (id(pending.cache), pending.request.table.name)

    async def _run_tick(self, batch: list[_Pending]) -> None:
        self.stats.ticks += 1
        tick_started = time.perf_counter()
        self._h_plans_per_tick.observe(len(batch))
        try:
            clusters: dict[tuple[object, str], list[_Pending]] = {}
            for pending in batch:
                clusters.setdefault(self._cluster_key(pending), []).append(pending)
            if self.network_delay > 0:
                await asyncio.sleep(self.network_delay)
            for cluster in clusters.values():
                await self._dispatch_cluster(cluster)
        except Exception as exc:
            # _dispatch_cluster settles its own cluster; anything that
            # escapes here (clustering itself failed) must still settle
            # every waiter or their queries hang forever.
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
        self._h_tick_seconds.observe(time.perf_counter() - tick_started)
        self._adapt_tick(len(batch))

    def _adapt_tick(self, plans_in_tick: int) -> None:
        """Resize the coalescing window after a tick (group-commit style).

        Load (≥ 2 plans met in the window, or more already queued behind
        it) grows the window so the next tick amortizes further; an idle
        tick — one lone plan that waited for nobody — shrinks it back
        toward ``tick_min`` so light traffic isn't taxed with latency.
        """
        if not self.adaptive_tick:
            return
        loaded = plans_in_tick + len(self._pending) >= 2
        if loaded:
            # Growth is capped at tick_max, but an operator-configured
            # interval already above the cap is left alone — load must
            # never *shrink* the window.
            grown = max(self.tick_interval * 2, self.TICK_QUANTUM)
            grown = min(grown, self.tick_max)
            if grown > self.tick_interval:
                self.stats.tick_grows += 1
                self.tick_interval = grown
        else:
            shrunk = max(self.tick_interval / 2, self.tick_min)
            if shrunk < self.TICK_QUANTUM:
                shrunk = self.tick_min
            # An idle tick may only lower the window — a tick_min above
            # the current interval must not add latency here.
            shrunk = min(shrunk, self.tick_interval)
            if shrunk < self.tick_interval:
                self.stats.tick_shrinks += 1
                self.tick_interval = shrunk

    # ------------------------------------------------------------------
    def _model_for(self, cache: DataCache) -> BatchedCostModel | None:
        """The cost model pricing one cache's round trips."""
        group = getattr(cache, "group", None)
        if group is not None:
            model = group.cost_model_for(cache.cache_id)
            if model is not None:
                return model
        return self.cost_model

    def wants_metadata_for(self, cache: DataCache) -> bool:
        """Whether queries on ``cache`` should collect §8.2 rebatch
        metadata — i.e. whether submitting here can actually rebatch them.

        True when rebatching is enabled and *some* amortized model prices
        this cache's refreshes: the scheduler default, or a per-cache
        model registered with the cache's group.
        """
        return self.rebatch and self._model_for(cache) is not None

    async def _dispatch_cluster(self, pendings: list[_Pending]) -> None:
        """Rebatch, merge per source, refresh via leaders, settle a cluster."""
        table_name = pendings[0].request.table.name
        try:
            group = getattr(pendings[0].cache, "group", None)
            grouped = (
                self.cross_cache and group is not None and group.fanout
            )
            # Rebatch against the prices dispatch will actually pay: the
            # group-projected per-source minimum under leader selection,
            # or each cache's own model when scheduling stays per-cache.
            # The per-tid routing sweep inside _rebatch_cluster is wasted
            # when no amortized model prices any of these caches.
            pricing = (
                group.pricing_model(self.cost_model) if grouped else None
            )
            if self.rebatch and (
                pricing is not None
                or any(
                    self._model_for(pending.cache) is not None
                    for pending in pendings
                )
            ):
                self._rebatch_cluster(pendings, pricing)

            requesters: dict[int, int] = {}
            merged: set[int] = set()
            for pending in pendings:
                merged |= pending.tids
                for tid in pending.tids:
                    requesters[tid] = requesters.get(tid, 0) + 1
            if grouped and len({id(p.cache) for p in pendings}) > 1:
                self.stats.cross_cache_merges += 1
            for pending in pendings:
                if pending.trace is not None:
                    pending.trace.step(
                        "coalesce",
                        table=table_name,
                        cluster_plans=len(pendings),
                        merged_tuples=len(merged),
                    )

            # One batched message per source, dispatched from the replica
            # whose cost model prices that source's round trip cheapest.
            # Leader choice needs the per-source demand split; a
            # standalone cluster has exactly one eligible dispatcher, so
            # it skips the per-tid routing pass entirely — refresh_batched
            # re-derives the per-source grouping itself, as it always did.
            by_leader: dict[int, tuple[DataCache, BatchedCostModel | None, set[int]]] = {}
            if grouped:
                demand: dict[str, set[int]] = {}
                for pending in pendings:
                    table = pending.request.table
                    for tid in pending.tids:
                        source_id = pending.cache.source_of_tuple(table, tid)
                        demand.setdefault(source_id, set()).add(tid)
                for source_id, tids in sorted(demand.items()):
                    leader, model = group.leader_for_source(
                        table_name,
                        source_id,
                        len(tids),
                        self.cost_model,
                        exclude=self._excluded_leaders,
                    )
                    if leader is None:
                        # Every subscribed replica is draining; dispatch
                        # through one anyway rather than drop the batch.
                        leader, model = group.leader_for_source(
                            table_name, source_id, len(tids), self.cost_model
                        )
                    entry = by_leader.setdefault(
                        id(leader), (leader, model, set())
                    )
                    entry[2].update(tids)
            else:
                leader = pendings[0].cache
                by_leader[id(leader)] = (leader, self._model_for(leader), merged)

            receipts: list[tuple[object, BatchedCostModel | None]] = []
            refreshed: set[int] = set()
            #: tid → source id for every planned tuple whose refresh
            #: ultimately failed (after retries, breaker gating, and
            #: leader failover) — the queries' degradation metadata.
            unreached: dict[int, str] = {}
            for leader, model, tids in by_leader.values():
                batch_receipts, batch_unreached = await self._dispatch_batch(
                    group if grouped else None,
                    table_name,
                    pendings,
                    leader,
                    model,
                    set(tids),
                )
                unreached.update(batch_unreached)
                for dispatcher, receipt, used_model in batch_receipts:
                    refreshed |= set(receipt.tids)
                    self.stats.source_requests += receipt.requests_sent
                    self.stats.total_cost_paid += receipt.total_cost
                    for source_receipt in receipt.per_source:
                        self._h_batch_size.labels(
                            source=source_receipt.source_id
                        ).observe(len(source_receipt.tids))
                        self._c_source_cost.labels(
                            source=source_receipt.source_id
                        ).inc(source_receipt.cost)
                        self._c_leader_selected.labels(
                            # Test doubles may not carry an id; label them
                            # rather than crash the dispatch path.
                            cache=getattr(dispatcher, "cache_id", "unknown")
                        ).inc()
                        if source_receipt.latency > 0:
                            self._h_source_latency.labels(
                                source=source_receipt.source_id
                            ).observe(source_receipt.latency)
                    receipts.append((receipt, used_model))
                    # One redirect per *source batch* that served some
                    # other cache's query through this leader.
                    self.stats.leader_redirects += sum(
                        1
                        for source_receipt in receipt.per_source
                        if any(
                            dispatcher is not pending.cache
                            and pending.tids & source_receipt.tids
                            for pending in pendings
                        )
                    )
            self.stats.tuples_refreshed += len(refreshed)

            shares = self._attribute(receipts, pendings, requesters)
            dispatched_sources = sorted(
                {
                    source_receipt.source_id
                    for receipt, _ in receipts
                    for source_receipt in receipt.per_source
                }
            )
            failed_sources = sorted(set(unreached.values()))
            for pending, share in zip(pendings, shares):
                mine_unreached = pending.tids & unreached.keys()
                if pending.trace is not None:
                    dispatch_fields = {
                        "sources": dispatched_sources,
                        "refreshed_tuples": len(refreshed),
                    }
                    if failed_sources:
                        dispatch_fields["failed_sources"] = failed_sources
                    pending.trace.step("dispatch", **dispatch_fields)
                    pending.trace.step(
                        "refresh",
                        tuples=len(pending.tids),
                        cost_share=share,
                    )
                # A waiter may have been cancelled (connection drop) while
                # the batch executed; settling it would raise and poison
                # the rest of the group.
                if not pending.future.done():
                    if mine_unreached:
                        self._c_fault["degraded_plan"].inc()
                        pending.future.set_result(
                            RefreshPlan(
                                frozenset(pending.tids - mine_unreached),
                                share,
                                unreached=frozenset(mine_unreached),
                                failed_sources=tuple(
                                    sorted(
                                        {
                                            unreached[tid]
                                            for tid in mine_unreached
                                        }
                                    )
                                ),
                            )
                        )
                    else:
                        pending.future.set_result(
                            RefreshPlan(frozenset(pending.tids), share)
                        )

            if self.on_refresh is not None and refreshed:
                # Invalidation scope follows *fan-out*, not the scheduling
                # mode: even with cross_cache=False, a fanout=True group's
                # source still pushed the fresh values to every sibling,
                # staling their cache-scoped result entries too.
                if group is not None and group.fanout:
                    tightened = group.caches_of_table(table_name)
                else:
                    tightened = [pendings[0].cache]
                try:
                    self.on_refresh(tightened, table_name, frozenset(refreshed))
                except Exception:
                    # Every future is already settled, so the enclosing
                    # handler would discard a listener error silently —
                    # count it instead of masking a broken invalidation
                    # hook (stale answers with zero signal).
                    self.stats.listener_errors += 1
        except Exception as exc:  # settle everyone; queries surface it
            for pending in pendings:
                if not pending.future.done():
                    pending.future.set_exception(exc)

    # ------------------------------------------------------------------
    # Failure handling: breaker gating, retries with backoff, failover
    # ------------------------------------------------------------------
    async def _dispatch_batch(
        self,
        group,
        table_name: str,
        pendings: list[_Pending],
        leader: DataCache,
        model: BatchedCostModel | None,
        tids: set[int],
    ) -> "tuple[list[tuple[DataCache, object, BatchedCostModel | None]], dict[int, str]]":
        """Dispatch one leader's merged tuples, surviving faults.

        The happy path is one ``refresh_batched`` call — bit-identical to
        the pre-fault scheduler.  Under faults it layers three recoveries:

        1. **Breaker gating** — tuples whose source's circuit is open are
           dropped up front (marked unreached) instead of waiting on a
           source that has been failing; an elapsed cooldown admits one
           probe batch (half-open).
        2. **Retry with backoff** — sources that return failure receipts
           are re-contacted up to ``retry_policy.max_attempts`` total
           attempts, sleeping the policy's deterministic capped
           exponential backoff between rounds.
        3. **Failover** — a crashed leader (:class:`CacheUnavailableError`)
           hands the whole remaining batch to the next-cheapest subscribed
           replica via ``leader_for_source(exclude=...)``; fan-out keeps
           every sibling tightened no matter who dispatched.

        Returns the ``(dispatcher, receipt, model)`` triples of every
        successful contact round plus a ``tid → source_id`` map of the
        tuples that stayed unreached — the queries they belong to finish
        in degraded mode.
        """
        policy = self.retry_policy
        anchor = pendings[0]
        unreached: dict[int, str] = {}
        receipts: list[tuple[DataCache, object, BatchedCostModel | None]] = []
        excluded: set[str] = set()
        source_memo: dict[int, str] = {}

        def source_of(tid: int) -> str:
            source_id = source_memo.get(tid)
            if source_id is None:
                source_id = anchor.cache.source_of_tuple(
                    anchor.request.table, tid
                )
                source_memo[tid] = source_id
            return source_id

        def gate(remaining: set[int]) -> set[int]:
            """Drop tuples whose source's breaker refuses contact."""
            if not self._breakers:
                return remaining
            by_source: dict[str, set[int]] = {}
            for tid in remaining:
                by_source.setdefault(source_of(tid), set()).add(tid)
            allowed: set[int] = set()
            for source_id in sorted(by_source):
                breaker = self._breakers.get(source_id)
                if breaker is None or breaker.allow():
                    allowed |= by_source[source_id]
                else:
                    self._c_fault["breaker_skip"].inc()
                    for tid in by_source[source_id]:
                        unreached[tid] = source_id
            return allowed

        remaining = gate(set(tids))
        attempt = 0
        while remaining:
            leader_table = (
                anchor.request.table
                if leader is anchor.cache
                else leader.table(table_name)
            )
            try:
                receipt = leader.refresh_batched(
                    leader_table,
                    remaining,
                    batch_cost=model.batch_cost if model is not None else None,
                )
            except CacheUnavailableError:
                # The dispatching replica itself is down — fail the whole
                # remaining batch over to the next-cheapest sibling.
                excluded.add(getattr(leader, "cache_id", "unknown"))
                next_leader, next_model = (None, None)
                if group is not None:
                    next_leader, next_model = group.leader_for_source(
                        table_name,
                        source_of(min(remaining)),
                        len(remaining),
                        self.cost_model,
                        exclude=excluded,
                    )
                if next_leader is None:
                    self._c_fault["failover_exhausted"].inc()
                    for tid in remaining:
                        unreached[tid] = source_of(tid)
                    break
                self._c_fault["failover_dispatch"].inc()
                leader, model = next_leader, next_model
                continue
            attempt += 1
            for source_receipt in receipt.per_source:
                self._record_breaker_success(source_receipt.source_id)
                remaining -= source_receipt.tids
            if receipt.per_source:
                receipts.append((leader, receipt, model))
            if not receipt.failures:
                break
            for failure in receipt.failures:
                self._c_fault["source_failure"].inc()
                self._record_breaker_failure(failure.source_id)
            if policy.exhausted(attempt):
                for failure in receipt.failures:
                    for tid in failure.tids & remaining:
                        unreached[tid] = failure.source_id
                break
            remaining = gate(remaining)
            if not remaining:
                break
            self._c_fault["retry"].inc()
            delay = policy.delay_for(attempt, key=table_name)
            if delay > 0:
                await asyncio.sleep(delay)
        return receipts, unreached

    def _breaker_for(self, source_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(source_id)
        if breaker is None:
            clock = (
                self.fault_injector.now
                if self.fault_injector is not None
                else None
            )
            gauge = self._g_breaker.labels(source=source_id)
            gauge.set(0)

            def on_transition(
                old: str, new: str, _gauge=gauge
            ) -> None:
                self._c_fault[f"breaker_{new}"].inc()
                _gauge.set(CircuitBreaker.STATE_CODES[new])

            breaker = CircuitBreaker(
                clock=clock,
                failure_threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
                on_transition=on_transition,
            )
            self._breakers[source_id] = breaker
        return breaker

    def _record_breaker_success(self, source_id: str) -> None:
        # Never *allocates* a breaker: a clean deployment keeps
        # ``_breakers`` empty so the dispatch gate stays one falsy check.
        breaker = self._breakers.get(source_id)
        if breaker is not None:
            breaker.record_success()

    def _record_breaker_failure(self, source_id: str) -> None:
        self._breaker_for(source_id).record_failure()

    def breaker_states(self) -> dict[str, str]:
        """Current circuit state per source that has ever failed."""
        return {
            source_id: breaker.state
            for source_id, breaker in sorted(self._breakers.items())
        }

    def fault_counts(self) -> dict[str, int]:
        """The failure-handling event counters, as plain integers."""
        return {
            event: int(child.value)
            for event, child in self._c_fault.items()
        }

    def _rebatch_cluster(
        self,
        pendings: list[_Pending],
        pricing: BatchedCostModel | None = None,
    ) -> None:
        """§8.2 across queries *and* caches: steer plans toward sources the
        cluster already pays setup for this tick.

        ``pricing`` overrides each pending's own model (the
        group-projected minimum for fan-out clusters, whose batches are
        dispatched through the cheapest member per source).
        """
        # rebatch_plan probes O(plan²) candidate sets, each probe reading
        # every member's source — memoize the subscription lookup once per
        # tick so probes are dict reads.  Tuple→source routing is a
        # property of the logical table, identical on every replica, so
        # one memo serves the whole cluster.
        source_by_tid: dict[int, str] = {}

        def source_of_tid(cache: DataCache, table: Table, tid: int) -> str:
            source_id = source_by_tid.get(tid)
            if source_id is None:
                source_id = cache.source_of_tuple(table, tid)
                source_by_tid[tid] = source_id
            return source_id

        def sources_of(pending: _Pending, tids: set[int]) -> set[str]:
            table = pending.request.table
            return {source_of_tid(pending.cache, table, tid) for tid in tids}

        # Sources pinned by plans we cannot rebatch pay setup regardless.
        contacted: set[str] = set()
        for pending in pendings:
            if not pending.request.can_rebatch:
                contacted |= sources_of(pending, pending.tids)
        for pending in pendings:
            request = pending.request
            model = pricing if pricing is not None else self._model_for(pending.cache)
            if (
                request.can_rebatch
                and model is not None
                and 0 < len(pending.tids) <= self.rebatch_limit
                and len(sources_of(pending, {row.tid for row in request.rows})) > 1
            ):
                table = pending.request.table

                def source_of(row: Row) -> str:
                    return source_of_tid(pending.cache, table, row.tid)

                tick_model = _TickCostModel(model, source_of, set(contacted))
                improved = rebatch_plan(
                    RefreshPlan(frozenset(pending.tids), 0.0),
                    request.rows,
                    request.widths,
                    request.budget_slack or 0.0,
                    tick_model,
                    extra_contacted=contacted,
                )
                pending.tids = set(improved.tids)
            contacted |= sources_of(pending, pending.tids)

    def _attribute(
        self,
        receipts: "list[tuple[object, BatchedCostModel | None]]",
        pendings: list[_Pending],
        requesters: dict[int, int],
    ) -> list[float]:
        """Split each source's paid cost fairly among its requesters.

        Setup is divided evenly among the queries that touched the source;
        each tuple's marginal cost evenly among the queries that requested
        that tuple.  Shares sum exactly to the receipts' total (both are
        ``setup + marginal · k`` per source, with each source priced by
        the model of the replica that dispatched its batch).
        """
        shares = [0.0] * len(pendings)
        for receipt, model in receipts:
            for source_receipt in receipt.per_source:
                source_id = source_receipt.source_id
                setup = model.setup_for(source_id) if model is not None else 0.0
                marginal = (
                    model.marginal_for(source_id) if model is not None else 1.0
                )
                users = [
                    index
                    for index, pending in enumerate(pendings)
                    if pending.tids & source_receipt.tids
                ]
                if not users:  # pragma: no cover - merged set implies a user
                    continue
                for index in users:
                    mine = pendings[index].tids & source_receipt.tids
                    shares[index] += setup / len(users) + sum(
                        marginal / requesters[tid] for tid in mine
                    )
        return shares
