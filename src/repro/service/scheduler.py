"""Cross-query refresh coalescing (paper §8.2 applied across queries).

Each in-flight query suspends at its refresh point
(:meth:`~repro.core.executor.QueryExecutor.execute_steps` yields a
:class:`~repro.core.executor.PlannedRefresh`) and submits the plan here.
The scheduler buffers submissions for one *tick*, then:

1. **rebatches** each plan that carries SUM metadata toward sources other
   queries in the tick already pay setup for
   (:func:`repro.extensions.batching.rebatch_plan` with a tick-aware cost
   model whose sunk setups are free);
2. **merges** the plans per (cache, table) and deduplicates tuple ids —
   N queries wanting the same hot tuples trigger one refresh;
3. dispatches one batched request per source through
   :meth:`~repro.replication.cache.DataCache.refresh_batched`, paying the
   amortized ``setup + marginal · k`` price once;
4. **attributes** the cost actually paid back to the queries: each
   source's setup is split evenly among the queries that used it, each
   tuple's marginal cost evenly among the queries that requested it.

Every query then resumes step 3 of its pipeline against the now-refreshed
cache.  Refreshing the union of plans only ever *narrows* bounds beyond
what each query planned for, so per-query precision guarantees survive
coalescing unchanged (property-tested in
``tests/service/test_concurrency_equivalence.py``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.executor import PlannedRefresh
from repro.core.refresh.base import RefreshPlan
from repro.extensions.batching import BatchedCostModel, rebatch_plan
from repro.replication.cache import DataCache
from repro.storage.row import Row
from repro.storage.table import Table

__all__ = ["RefreshScheduler", "SchedulerStats"]


@dataclass(slots=True)
class SchedulerStats:
    """Counters describing how much coalescing actually happened."""

    ticks: int = 0
    plans_submitted: int = 0
    #: Tuple refreshes the queries asked for (pre-dedup, pre-rebatch).
    tuples_requested: int = 0
    #: Distinct tuples actually refreshed after merging.
    tuples_refreshed: int = 0
    source_requests: int = 0
    total_cost_paid: float = 0.0
    #: Adaptive-tick adjustments (0 unless ``adaptive_tick`` is on).
    tick_grows: int = 0
    tick_shrinks: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "ticks": self.ticks,
            "plans_submitted": self.plans_submitted,
            "tuples_requested": self.tuples_requested,
            "tuples_refreshed": self.tuples_refreshed,
            "source_requests": self.source_requests,
            "total_cost_paid": self.total_cost_paid,
            "tick_grows": self.tick_grows,
            "tick_shrinks": self.tick_shrinks,
        }


@dataclass(slots=True)
class _Pending:
    """One query's suspended refresh: its plan and the future to resume it."""

    cache: DataCache
    request: PlannedRefresh
    #: Effective tuple ids for this query (mutated by the rebatch pass).
    tids: set[int]
    future: "asyncio.Future[RefreshPlan]"


class _TickCostModel(BatchedCostModel):
    """Amortized costs as seen mid-tick: sunk setups are free.

    Same pricing as the wrapped :class:`BatchedCostModel` — including
    any per-source (per-shard) setup/marginal overrides — except sources
    some other query in the same tick already contacts charge no setup,
    which is exactly what makes pulling tuples from those sources
    attractive during cross-query rebatching.
    """

    def __init__(
        self,
        model: BatchedCostModel,
        source_of: Callable[[Row], str],
        contacted: set[str],
    ) -> None:
        super().__init__(
            setup=model.setup,
            marginal=model.marginal,
            source_of=source_of,
            setup_by_source=model.setup_by_source,
            marginal_by_source=model.marginal_by_source,
        )
        self._contacted = contacted

    def cost_of_set(self, rows: Iterable[Row]) -> float:
        rows = list(rows)
        sunk = {self.source_of(row) for row in rows} & self._contacted
        return super().cost_of_set(rows) - sum(
            self.setup_for(source_id) for source_id in sunk
        )


class RefreshScheduler:
    """Coalesces the refresh plans of concurrent queries, tick by tick.

    ``tick_interval`` is the coalescing window in seconds; ``0`` flushes
    as soon as every currently-runnable query task has reached its refresh
    point (one trip around the event loop), which keeps simulated-clock
    tests deterministic.  ``cost_model`` enables §8.2 amortized accounting
    and cross-query rebatching; without one, costs are uniform (1 per
    tuple) and plans are only deduplicated.  ``network_delay`` simulates
    one source round-trip time per tick (round trips to distinct sources
    proceed in parallel), letting benchmarks measure the wall-clock value
    of coalescing, not just the cost-model value.
    """

    #: Smallest non-zero window the adaptive controller grows from.
    TICK_QUANTUM = 0.001

    def __init__(
        self,
        cost_model: BatchedCostModel | None = None,
        tick_interval: float = 0.0,
        rebatch: bool = True,
        rebatch_limit: int = 64,
        network_delay: float = 0.0,
        adaptive_tick: bool = False,
        tick_min: float = 0.0,
        tick_max: float = 0.05,
    ) -> None:
        self.cost_model = cost_model
        self.tick_interval = tick_interval
        self.rebatch = rebatch and cost_model is not None
        #: Plans larger than this skip the rebatch post-pass: rebatching
        #: probes O(plan²) candidate sets for a payoff bounded by a few
        #: setup costs, a bad trade once plans dwarf the setup/marginal
        #: ratio.
        self.rebatch_limit = rebatch_limit
        self.network_delay = network_delay
        #: Group-commit style window sizing: a tick that coalesced plans
        #: doubles the window (batching pays — wait for more company, up
        #: to ``tick_max``); a tick that fired for a lone plan halves it
        #: (nobody to coalesce with — stop taxing latency, down to
        #: ``tick_min``).
        self.adaptive_tick = adaptive_tick
        self.tick_min = tick_min
        self.tick_max = tick_max
        self.stats = SchedulerStats()
        self._pending: list[_Pending] = []
        self._flush_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    async def submit(
        self, cache: DataCache, request: PlannedRefresh
    ) -> RefreshPlan:
        """Queue one query's planned refresh; resolves once it is applied.

        Returns the effective plan for the submitting query: the tuple ids
        refreshed on its behalf (possibly rebatched) and the share of the
        batch cost attributed to it.
        """
        future: asyncio.Future[RefreshPlan] = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append(
            _Pending(cache, request, set(request.plan.tids), future)
        )
        self.stats.plans_submitted += 1
        self.stats.tuples_requested += len(request.plan.tids)
        if self._flush_task is None:
            self._flush_task = asyncio.create_task(self._flush())
        return await future

    # ------------------------------------------------------------------
    async def _flush(self) -> None:
        try:
            if self.tick_interval > 0:
                await asyncio.sleep(self.tick_interval)
            else:
                # One trip around the event loop lets every already-started
                # query task reach its submit point before the tick fires.
                await asyncio.sleep(0)
            while self._pending:
                batch, self._pending = self._pending, []
                await self._run_tick(batch)
        finally:
            self._flush_task = None

    async def _run_tick(self, batch: list[_Pending]) -> None:
        self.stats.ticks += 1
        groups: dict[tuple[int, str], list[_Pending]] = {}
        for pending in batch:
            key = (id(pending.cache), pending.request.table.name)
            groups.setdefault(key, []).append(pending)
        if self.network_delay > 0:
            await asyncio.sleep(self.network_delay)
        for group in groups.values():
            self._dispatch_group(group)
        self._adapt_tick(len(batch))

    def _adapt_tick(self, plans_in_tick: int) -> None:
        """Resize the coalescing window after a tick (group-commit style).

        Load (≥ 2 plans met in the window, or more already queued behind
        it) grows the window so the next tick amortizes further; an idle
        tick — one lone plan that waited for nobody — shrinks it back
        toward ``tick_min`` so light traffic isn't taxed with latency.
        """
        if not self.adaptive_tick:
            return
        loaded = plans_in_tick + len(self._pending) >= 2
        if loaded:
            # Growth is capped at tick_max, but an operator-configured
            # interval already above the cap is left alone — load must
            # never *shrink* the window.
            grown = max(self.tick_interval * 2, self.TICK_QUANTUM)
            grown = min(grown, self.tick_max)
            if grown > self.tick_interval:
                self.stats.tick_grows += 1
                self.tick_interval = grown
        else:
            shrunk = max(self.tick_interval / 2, self.tick_min)
            if shrunk < self.TICK_QUANTUM:
                shrunk = self.tick_min
            # An idle tick may only lower the window — a tick_min above
            # the current interval must not add latency here.
            shrunk = min(shrunk, self.tick_interval)
            if shrunk < self.tick_interval:
                self.stats.tick_shrinks += 1
                self.tick_interval = shrunk

    # ------------------------------------------------------------------
    def _dispatch_group(self, pendings: list[_Pending]) -> None:
        """Rebatch, merge, refresh, and settle one (cache, table) group."""
        cache = pendings[0].cache
        table = pendings[0].request.table
        try:
            if self.rebatch and self.cost_model is not None:
                self._rebatch_group(cache, table, pendings, self.cost_model)

            merged: set[int] = set()
            requesters: dict[int, int] = {}
            for pending in pendings:
                merged |= pending.tids
                for tid in pending.tids:
                    requesters[tid] = requesters.get(tid, 0) + 1

            receipt = cache.refresh_batched(
                table, merged, batch_cost=self._batch_cost()
            )
            self.stats.tuples_refreshed += len(receipt.tids)
            self.stats.source_requests += receipt.requests_sent
            self.stats.total_cost_paid += receipt.total_cost

            shares = self._attribute(receipt, pendings, requesters)
            for pending, share in zip(pendings, shares):
                # A waiter may have been cancelled (connection drop) while
                # the batch executed; settling it would raise and poison
                # the rest of the group.
                if not pending.future.done():
                    pending.future.set_result(
                        RefreshPlan(frozenset(pending.tids), share)
                    )
        except Exception as exc:  # settle everyone; queries surface it
            for pending in pendings:
                if not pending.future.done():
                    pending.future.set_exception(exc)

    def _batch_cost(self) -> Callable[[str, int], float] | None:
        model = self.cost_model
        if model is None:
            return None
        # model.batch_cost prices each shard's message with that shard's
        # own setup/marginal (heterogeneous-shard deployments).
        return model.batch_cost

    def _rebatch_group(
        self,
        cache: DataCache,
        table: Table,
        pendings: list[_Pending],
        model: BatchedCostModel,
    ) -> None:
        """§8.2 across queries: steer plans toward already-paid sources."""
        # rebatch_plan probes O(plan²) candidate sets, each probe reading
        # every member's source — memoize the subscription lookup once per
        # tick so probes are dict reads.
        source_by_tid: dict[int, str] = {}

        def source_of_tid(tid: int) -> str:
            source_id = source_by_tid.get(tid)
            if source_id is None:
                source_id = cache.source_of_tuple(table, tid)
                source_by_tid[tid] = source_id
            return source_id

        def source_of(row: Row) -> str:
            return source_of_tid(row.tid)

        def sources_of(tids: set[int]) -> set[str]:
            return {source_of_tid(tid) for tid in tids}

        # Sources pinned by plans we cannot rebatch pay setup regardless.
        contacted: set[str] = set()
        for pending in pendings:
            if not pending.request.can_rebatch:
                contacted |= sources_of(pending.tids)
        for pending in pendings:
            request = pending.request
            if (
                request.can_rebatch
                and 0 < len(pending.tids) <= self.rebatch_limit
                and len(sources_of({row.tid for row in request.rows})) > 1
            ):
                tick_model = _TickCostModel(model, source_of, set(contacted))
                improved = rebatch_plan(
                    RefreshPlan(frozenset(pending.tids), 0.0),
                    request.rows,
                    request.widths,
                    request.budget_slack or 0.0,
                    tick_model,
                    extra_contacted=contacted,
                )
                pending.tids = set(improved.tids)
            contacted |= sources_of(pending.tids)

    def _attribute(
        self, receipt, pendings: list[_Pending], requesters: dict[int, int]
    ) -> list[float]:
        """Split each source's paid cost fairly among its requesters.

        Setup is divided evenly among the queries that touched the source;
        each tuple's marginal cost evenly among the queries that requested
        that tuple.  Shares sum exactly to the receipt's total (both are
        ``setup + marginal · k`` per source, with each shard priced by
        its own parameters under a per-source model).
        """
        model = self.cost_model
        shares = [0.0] * len(pendings)
        for source_receipt in receipt.per_source:
            source_id = source_receipt.source_id
            setup = model.setup_for(source_id) if model is not None else 0.0
            marginal = model.marginal_for(source_id) if model is not None else 1.0
            users = [
                index
                for index, pending in enumerate(pendings)
                if pending.tids & source_receipt.tids
            ]
            if not users:  # pragma: no cover - merged set implies a user
                continue
            for index in users:
                mine = pendings[index].tids & source_receipt.tids
                shares[index] += setup / len(users) + sum(
                    marginal / requesters[tid] for tid in mine
                )
        return shares
