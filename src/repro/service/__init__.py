"""The concurrent TRAPP query service (paper §8.2/§8.3 at serving scale).

The paper's Figure 3 architecture assumes many users issuing bounded
aggregate queries against shared caches; §8.2/§8.3 observe that refresh
cost should be amortized by batching requests to the same source.  This
package is the serving layer that realizes both observations:

* :class:`RefreshScheduler` — collects the refresh plans of every
  in-flight query per tick, deduplicates tuple ids, rebatches plans
  toward already-contacted sources, and dispatches one amortized batch
  per source — merging across queries *and* across the replicas of a
  :class:`~repro.replication.fanout.CacheGroup`, each source's batch
  travelling through the cheapest subscribed replica — so N concurrent
  queries wanting the same hot tuples trigger one refresh instead of N;
* :class:`QueryService` — per-client sessions, admission control,
  cache-aware routing of group queries (:mod:`repro.service.routing`),
  and a short-TTL bounded-answer result cache (cache-scoped with a
  group-level shared tier, invalidated by dispatched refreshes) in
  front of the executor;
* :func:`serve` / :class:`TrappClient` — a newline-delimited-JSON wire
  protocol so multiple processes can issue TRAPP SQL concurrently.

Every layer reports into one :class:`~repro.telemetry.Telemetry`
(metrics registry + query tracer, PR 7), served over the wire by the
``metrics`` and ``trace`` ops — see ``docs/OBSERVABILITY.md``.
"""

from repro.service.client import ClientAnswer, TrappClient
from repro.service.results import ResultCache
from repro.service.routing import (
    CacheRouter,
    LeastLoadedRouter,
    StickyRouter,
    WidestBoundsRouter,
)
from repro.service.scheduler import RefreshScheduler, SchedulerStats
from repro.service.server import TrappServer, serve
from repro.service.service import ClientSession, QueryService, ServiceResult

__all__ = [
    "RefreshScheduler",
    "SchedulerStats",
    "ResultCache",
    "CacheRouter",
    "StickyRouter",
    "LeastLoadedRouter",
    "WidestBoundsRouter",
    "QueryService",
    "ClientSession",
    "ServiceResult",
    "TrappServer",
    "serve",
    "TrappClient",
    "ClientAnswer",
]
