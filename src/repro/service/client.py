"""The asyncio client for the query service's NDJSON protocol.

:class:`TrappClient` multiplexes any number of concurrent requests over
one connection: each request gets a fresh id, a background reader task
resolves replies by id, and callers simply ``await client.query(...)``
from as many tasks as they like.

    client = await TrappClient.connect("127.0.0.1", 7474, client_id="c1")
    answer = await client.query("monitor", "SELECT AVG(traffic) WITHIN 10 FROM links")
    print(answer.lo, answer.hi, answer.cached)
    await client.close()
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass

from repro.core.bound import Bound
from repro.core.constraints import width_within
from repro.errors import RemoteQueryError, ServiceError
from repro.service.protocol import MAX_LINE_BYTES, decode, encode

__all__ = ["TrappClient", "ClientAnswer"]


@dataclass(frozen=True, slots=True)
class ClientAnswer:
    """A bounded answer as decoded from the wire."""

    lo: float
    hi: float
    width: float
    exact: bool
    refreshed: tuple[int, ...]
    refresh_cost: float
    #: True when the server answered from its result cache.
    cached: bool

    @property
    def bound(self) -> Bound:
        return Bound(self.lo, self.hi)

    def meets(self, max_width: float) -> bool:
        return width_within(self.width, max_width)


class TrappClient:
    """One connection to a TRAPP query server; safe for concurrent use."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client_id: str,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.client_id = client_id
        self._next_id = 0
        self._futures: dict[int, asyncio.Future] = {}
        self._closed = False
        self._failure: Exception | None = None
        self._read_task = asyncio.create_task(self._read_loop())

    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls, host: str, port: int, client_id: str = "anon"
    ) -> "TrappClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES + 2
        )
        client = cls(reader, writer, client_id)
        await client._request({"op": "hello", "client": client_id})
        return client

    async def __aenter__(self) -> "TrappClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def query(self, cache_id: str, sql: str) -> ClientAnswer:
        """Execute TRAPP SQL against one cache; raises
        :class:`RemoteQueryError` on a server-side failure."""
        reply = await self._request(
            {"op": "query", "cache": cache_id, "sql": sql}
        )
        result = reply["result"]
        return ClientAnswer(
            lo=float(result["lo"]),
            hi=float(result["hi"]),
            width=float(result["width"]),
            exact=bool(result["exact"]),
            refreshed=tuple(result["refreshed"]),
            refresh_cost=float(result["refresh_cost"]),
            cached=bool(result["cached"]),
        )

    async def ping(self) -> float:
        """Round-trip liveness probe; returns the server's clock reading."""
        reply = await self._request({"op": "ping"})
        return float(reply["now"])

    async def stats(self) -> dict:
        """The server's serving/coalescing counters."""
        reply = await self._request({"op": "stats"})
        return reply["stats"]

    async def metrics(self) -> dict:
        """The server's full telemetry registry snapshot (PR 7):
        ``{"enabled": bool, "families": [{name, type, help, samples}]}``."""
        reply = await self._request({"op": "metrics"})
        return reply["metrics"]

    async def metrics_text(self) -> str:
        """The same snapshot as Prometheus-style exposition text."""
        reply = await self._request({"op": "metrics", "format": "text"})
        return str(reply["metrics_text"])

    async def trace(
        self, limit: int | None = None, client: str | None = None
    ) -> list[dict]:
        """Recently completed query spans (oldest first), optionally
        filtered by client id and truncated to the last ``limit``."""
        message: dict = {"op": "trace"}
        if limit is not None:
            message["limit"] = limit
        if client is not None:
            message["client"] = client
        reply = await self._request(message)
        return list(reply["traces"])

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._read_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._read_task
        with contextlib.suppress(Exception):
            self._writer.close()
            await self._writer.wait_closed()
        self._fail_pending(ServiceError("connection closed"))

    # ------------------------------------------------------------------
    async def _request(self, message: dict) -> dict:
        if self._failure is not None:
            raise self._failure
        if self._closed:
            raise ServiceError("client is closed")
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        try:
            self._writer.write(encode({**message, "id": request_id}))
            await self._writer.drain()
            reply = await future
        finally:
            self._futures.pop(request_id, None)
        if not reply.get("ok"):
            error = reply.get("error") or {}
            raise RemoteQueryError(
                str(error.get("kind", "ServiceError")),
                str(error.get("message", "unknown server error")),
            )
        return reply

    async def _read_loop(self) -> None:
        failure: Exception = ServiceError("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                reply = decode(line)
                future = self._futures.get(reply.get("id"))
                if future is not None and not future.done():
                    future.set_result(reply)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            failure = ServiceError(f"connection lost: {exc}")
        finally:
            # Terminal: without a reader, later requests could never be
            # answered — fail them fast instead of hanging.
            if not self._closed:
                self._failure = failure
            self._fail_pending(failure)

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._futures.values():
            if not future.done():
                future.set_exception(exc)
        self._futures.clear()
