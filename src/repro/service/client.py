"""The asyncio client for the query service's NDJSON protocol.

:class:`TrappClient` multiplexes any number of concurrent requests over
one connection: each request gets a fresh id, a background reader task
resolves replies by id, and callers simply ``await client.query(...)``
from as many tasks as they like.

    client = await TrappClient.connect("127.0.0.1", 7474, client_id="c1")
    answer = await client.query("monitor", "SELECT AVG(traffic) WITHIN 10 FROM links")
    print(answer.lo, answer.hi, answer.cached)
    await client.close()
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass

from repro.core.bound import Bound
from repro.core.constraints import width_within
from repro.errors import RemoteQueryError, ServiceError, WireTimeoutError
from repro.service.protocol import MAX_LINE_BYTES, decode, encode

__all__ = ["TrappClient", "ClientAnswer"]


@dataclass(frozen=True, slots=True)
class ClientAnswer:
    """A bounded answer as decoded from the wire."""

    lo: float
    hi: float
    width: float
    exact: bool
    refreshed: tuple[int, ...]
    refresh_cost: float
    #: True when the server answered from its result cache.
    cached: bool
    #: True when the answer is wider than the requested constraint because
    #: one or more sources were unreachable (the bound still contains the
    #: true value — precision degraded, correctness did not).
    degraded: bool = False
    #: The source ids the server could not reach, when degraded.
    unreachable_sources: tuple[str, ...] = ()

    @property
    def bound(self) -> Bound:
        return Bound(self.lo, self.hi)

    def meets(self, max_width: float) -> bool:
        return width_within(self.width, max_width)


class TrappClient:
    """One connection to a TRAPP query server; safe for concurrent use."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client_id: str,
        host: str | None = None,
        port: int | None = None,
        deadline: float | None = 30.0,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.client_id = client_id
        self._host = host
        self._port = port
        #: Per-request reply deadline in seconds (``None`` disables it).
        self.deadline = deadline
        #: How many times the client re-established its connection.
        self.reconnects = 0
        self._next_id = 0
        self._futures: dict[int, asyncio.Future] = {}
        self._closed = False
        self._failure: Exception | None = None
        self._read_task = asyncio.create_task(self._read_loop())

    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        client_id: str = "anon",
        deadline: float | None = 30.0,
    ) -> "TrappClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES + 2
        )
        client = cls(
            reader, writer, client_id, host=host, port=port, deadline=deadline
        )
        await client._request({"op": "hello", "client": client_id})
        return client

    async def __aenter__(self) -> "TrappClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def query(self, cache_id: str, sql: str) -> ClientAnswer:
        """Execute TRAPP SQL against one cache; raises
        :class:`RemoteQueryError` on a server-side failure."""
        reply = await self._request(
            {"op": "query", "cache": cache_id, "sql": sql}
        )
        result = reply["result"]
        return ClientAnswer(
            lo=float(result["lo"]),
            hi=float(result["hi"]),
            width=float(result["width"]),
            exact=bool(result["exact"]),
            refreshed=tuple(result["refreshed"]),
            refresh_cost=float(result["refresh_cost"]),
            cached=bool(result["cached"]),
            degraded=bool(result.get("degraded", False)),
            unreachable_sources=tuple(result.get("unreachable_sources", ())),
        )

    async def ping(self) -> float:
        """Round-trip liveness probe; returns the server's clock reading."""
        reply = await self._request({"op": "ping"})
        return float(reply["now"])

    async def stats(self) -> dict:
        """The server's serving/coalescing counters."""
        reply = await self._request({"op": "stats"})
        return reply["stats"]

    async def metrics(self) -> dict:
        """The server's full telemetry registry snapshot (PR 7):
        ``{"enabled": bool, "families": [{name, type, help, samples}]}``."""
        reply = await self._request({"op": "metrics"})
        return reply["metrics"]

    async def metrics_text(self) -> str:
        """The same snapshot as Prometheus-style exposition text."""
        reply = await self._request({"op": "metrics", "format": "text"})
        return str(reply["metrics_text"])

    async def trace(
        self, limit: int | None = None, client: str | None = None
    ) -> list[dict]:
        """Recently completed query spans (oldest first), optionally
        filtered by client id and truncated to the last ``limit``."""
        message: dict = {"op": "trace"}
        if limit is not None:
            message["limit"] = limit
        if client is not None:
            message["client"] = client
        reply = await self._request(message)
        return list(reply["traces"])

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._read_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._read_task
        with contextlib.suppress(Exception):
            self._writer.close()
            await self._writer.wait_closed()
        self._fail_pending(ServiceError("connection closed"))

    # ------------------------------------------------------------------
    async def _request(self, message: dict, _retry: bool = True) -> dict:
        """Send one message and await its reply.

        Two failure modes are bounded instead of fatal/hanging: a lost
        connection and a reply that never arrives within ``deadline``.
        Either triggers at most **one** reconnect (``_retry``) followed by
        a single re-send; a second failure surfaces as
        :class:`WireTimeoutError` (timeout) or the underlying
        :class:`ServiceError` (connection loss).  Requests are idempotent
        reads at the protocol level, so one bounded re-send is safe.
        """
        if self._closed:
            raise ServiceError("client is closed")
        if self._failure is not None:
            if not _retry:
                raise self._failure
            await self._reconnect()
            return await self._request(message, _retry=False)
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        try:
            self._writer.write(encode({**message, "id": request_id}))
            await self._writer.drain()
            if self.deadline is None:
                reply = await future
            else:
                reply = await asyncio.wait_for(future, self.deadline)
        except asyncio.TimeoutError:
            if _retry and not self._closed and self._host is not None:
                await self._reconnect()
                return await self._request(message, _retry=False)
            raise WireTimeoutError(
                f"no reply to {message.get('op', '?')!r} within "
                f"{self.deadline}s"
            ) from None
        except ServiceError:
            if _retry and not self._closed and self._host is not None:
                await self._reconnect()
                return await self._request(message, _retry=False)
            raise
        finally:
            self._futures.pop(request_id, None)
        if not reply.get("ok"):
            error = reply.get("error") or {}
            raise RemoteQueryError(
                str(error.get("kind", "ServiceError")),
                str(error.get("message", "unknown server error")),
            )
        return reply

    async def _reconnect(self) -> None:
        """Tear down the current connection and open a fresh one (once).

        Pending requests on the old connection are failed — their replies
        can never be matched after the socket is replaced.  The new
        connection re-sends ``hello`` so the server keeps attributing the
        session to the same client id.
        """
        if self._host is None or self._port is None:
            raise self._failure or ServiceError(
                "connection lost and no endpoint known for reconnect"
            )
        self._read_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._read_task
        with contextlib.suppress(Exception):
            self._writer.close()
            await self._writer.wait_closed()
        self._fail_pending(ServiceError("connection reset during reconnect"))
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port, limit=MAX_LINE_BYTES + 2
        )
        self._failure = None
        self._read_task = asyncio.create_task(self._read_loop())
        self.reconnects += 1
        await self._request(
            {"op": "hello", "client": self.client_id}, _retry=False
        )

    async def _read_loop(self) -> None:
        failure: Exception = ServiceError("server closed the connection")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                reply = decode(line)
                future = self._futures.get(reply.get("id"))
                if future is not None and not future.done():
                    future.set_result(reply)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            failure = ServiceError(f"connection lost: {exc}")
        finally:
            # Terminal: without a reader, later requests could never be
            # answered — fail them fast instead of hanging.
            if not self._closed:
                self._failure = failure
            self._fail_pending(failure)

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._futures.values():
            if not future.done():
                future.set_exception(exc)
        self._futures.clear()
