"""The asyncio NDJSON server front-end of the query service.

``serve()`` binds a :class:`~repro.service.service.QueryService` to a TCP
port.  Each connection may pipeline requests: ``query`` ops run as
independent tasks (so one slow refresh does not head-of-line-block the
connection, and queries from many connections coalesce in the shared
scheduler), while replies are serialized per connection and matched by
the client via the echoed ``id``.

Besides ``hello``/``ping``/``stats``/``query``, the server exposes the
PR 7 observability surface: ``metrics`` returns the full telemetry
registry snapshot (``format: "text"`` selects the Prometheus exposition
instead) and ``trace`` the most recent completed query spans.  The
server meters itself too — connection open/active counts and a
``trapp_wire_errors_total`` counter covering oversized lines,
undecodable payloads, unknown ops, and client disconnects.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.errors import TrappError, WireProtocolError
from repro.service.protocol import (
    MAX_LINE_BYTES,
    answer_payload,
    decode,
    encode,
    error_payload,
    json_safe,
)
from repro.service.service import QueryService
from repro.telemetry import render_text

__all__ = ["TrappServer", "serve"]


class _WireTelemetry:
    """The server's own instruments, bound once per ``serve()`` call."""

    def __init__(self, service: QueryService) -> None:
        registry = service.telemetry.registry
        self.errors = registry.counter(
            "trapp_wire_errors_total",
            "Protocol-level failures: oversized lines, undecodable "
            "payloads, unknown ops, client disconnects",
            ("kind",),
        )
        self.connections_total = registry.counter(
            "trapp_connections_total",
            "Connections accepted since the server started",
        )
        self.connections_active = registry.gauge(
            "trapp_connections_active",
            "Connections currently open",
        )


class TrappServer:
    """A running service endpoint; use as an async context manager."""

    def __init__(self, service: QueryService, server: asyncio.base_events.Server):
        self.service = service
        self._server = server

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._server.sockets[0].getsockname()[0]

    async def close(self) -> None:
        self._server.close()
        await self._server.wait_closed()

    async def __aenter__(self) -> "TrappServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def serve(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> TrappServer:
    """Start serving ``service`` on ``host:port`` (0 = ephemeral port)."""

    wire = _WireTelemetry(service)

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            await _handle_connection(service, wire, reader, writer)
        except asyncio.CancelledError:
            # Loop teardown cancels in-flight connection handlers; ending
            # normally here keeps asyncio.streams' done-callback (which
            # calls task.exception() unconditionally) from logging it.
            pass

    server = await asyncio.start_server(
        handler, host, port, limit=MAX_LINE_BYTES + 2
    )
    return TrappServer(service, server)


# ----------------------------------------------------------------------
async def _handle_connection(
    service: QueryService,
    wire: _WireTelemetry,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    write_lock = asyncio.Lock()
    connection_client = "anon"
    tasks: set[asyncio.Task] = set()
    wire.connections_total.inc()
    wire.connections_active.inc()
    try:
        while True:
            try:
                line = await reader.readline()
            except ValueError:  # line exceeded the stream limit
                wire.errors.labels(kind="oversized_line").inc()
                await _send(
                    writer,
                    write_lock,
                    {
                        "id": None,
                        "ok": False,
                        "error": error_payload(
                            WireProtocolError("oversized protocol line")
                        ),
                    },
                )
                break
            if not line:
                break
            if not line.strip():
                continue
            try:
                message = decode(line)
            except WireProtocolError as exc:
                wire.errors.labels(kind="undecodable").inc()
                await _send(
                    writer,
                    write_lock,
                    {"id": None, "ok": False, "error": error_payload(exc)},
                )
                continue
            request_id = message.get("id")
            op = message.get("op")
            if op == "hello":
                connection_client = str(message.get("client", "anon"))
                await _send(
                    writer,
                    write_lock,
                    {"id": request_id, "ok": True, "client": connection_client},
                )
            elif op == "ping":
                await _send(
                    writer,
                    write_lock,
                    {
                        "id": request_id,
                        "ok": True,
                        "now": service.system.clock.now(),
                    },
                )
            elif op == "stats":
                await _send(
                    writer,
                    write_lock,
                    {"id": request_id, "ok": True, "stats": service.stats()},
                )
            elif op == "metrics":
                snapshot = service.telemetry.snapshot()
                if message.get("format") == "text":
                    reply = {
                        "id": request_id,
                        "ok": True,
                        "metrics_text": render_text(snapshot),
                    }
                else:
                    reply = {
                        "id": request_id,
                        "ok": True,
                        "metrics": json_safe(snapshot),
                    }
                await _send(writer, write_lock, reply)
            elif op == "trace":
                limit = message.get("limit")
                await _send(
                    writer,
                    write_lock,
                    {
                        "id": request_id,
                        "ok": True,
                        "traces": json_safe(
                            service.telemetry.tracer.recent(
                                limit=int(limit) if limit is not None else None,
                                client=message.get("client"),
                            )
                        ),
                    },
                )
            elif op == "query":
                task = asyncio.create_task(
                    _run_query(
                        service,
                        wire,
                        writer,
                        write_lock,
                        message,
                        message.get("client", connection_client),
                    )
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            else:
                wire.errors.labels(kind="unknown_op").inc()
                await _send(
                    writer,
                    write_lock,
                    {
                        "id": request_id,
                        "ok": False,
                        "error": error_payload(
                            WireProtocolError(f"unknown op {op!r}")
                        ),
                    },
                )
    except ConnectionError:
        wire.errors.labels(kind="disconnect").inc()
    finally:
        for task in tasks:
            task.cancel()
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
        wire.connections_active.dec()


async def _run_query(
    service: QueryService,
    wire: _WireTelemetry,
    writer: asyncio.StreamWriter,
    write_lock: asyncio.Lock,
    message: dict,
    client_id: str,
) -> None:
    request_id = message.get("id")
    try:
        result = await service.query(
            str(message.get("cache", "")),
            str(message.get("sql", "")),
            client_id=str(client_id),
        )
        reply = {
            "id": request_id,
            "ok": True,
            "result": answer_payload(result.answer, result.cached),
        }
    except asyncio.CancelledError:
        # The connection dropped (or the server is closing) with this
        # query mid-pipeline; its in-flight accounting unwound through
        # the service's finally blocks.
        wire.errors.labels(kind="disconnect").inc()
        raise
    except TrappError as exc:
        reply = {"id": request_id, "ok": False, "error": error_payload(exc)}
    except Exception as exc:  # never take the connection down with a query
        reply = {"id": request_id, "ok": False, "error": error_payload(exc)}
    try:
        await _send(writer, write_lock, reply)
    except ConnectionError:
        # Client vanished between answering and replying.
        wire.errors.labels(kind="disconnect").inc()


async def _send(
    writer: asyncio.StreamWriter, write_lock: asyncio.Lock, message: dict
) -> None:
    async with write_lock:
        writer.write(encode(message))
        await writer.drain()
