"""Cache-aware query routing across a replication fan-out group.

With one cache per deployment, "which cache answers this query" was not a
question.  A :class:`~repro.replication.fanout.CacheGroup` makes it one,
and the answer changes what the query costs: a replica already holding
tight bounds for the queried table answers without refreshing, a loaded
replica queues the query behind others, and a sticky mapping keeps one
client's repeat queries on bounds its own earlier refreshes tightened.

A :class:`CacheRouter` picks the replica for one query.  The service
calls it only for *group* queries (``service.query(group_id, …)``);
naming a concrete cache id still pins that cache, so deployments can mix
routed and pinned traffic.

Membership is *elastic* (detach / snapshot admit), and the routers'
contract with it is the candidate list itself: the service passes only
the replicas currently serving the table — draining replicas excluded —
so a detached replica's clients land on survivors on their next query
with no router-side state to reconcile, and an admitted joiner becomes
routable the moment it enters the group registry.  Routers must
therefore derive placement from the candidate list presented *per call*
(hash over it, rank it), never from remembered membership.

Three policies ship:

* :class:`StickyRouter` — hash the client id over the replicas: one
  client always lands on one cache (stable as long as membership is),
  maximizing per-client bound reuse;
* :class:`LeastLoadedRouter` — fewest in-flight queries first, the
  classic load balancer;
* :class:`WidestBoundsRouter` — bound-state aware: routes *away* from
  the widest replica, picking the one whose cached bounds over the
  queried table are currently tightest — the replica most likely to
  answer within the precision constraint without paying for a refresh.
"""

from __future__ import annotations

import zlib
from typing import Mapping, Sequence

from repro.errors import ServiceError
from repro.replication.cache import DataCache

__all__ = [
    "CacheRouter",
    "StickyRouter",
    "LeastLoadedRouter",
    "WidestBoundsRouter",
]


class CacheRouter:
    """Strategy interface: pick the replica that serves one query.

    ``candidates`` are the group's replicas subscribed to the queried
    table, in deterministic (cache-id) order and never empty; ``loads``
    maps cache ids to currently in-flight query counts (absent = 0).
    """

    def route(
        self,
        candidates: Sequence[DataCache],
        client_id: str,
        table_name: str,
        loads: Mapping[str, int],
    ) -> DataCache:
        raise NotImplementedError

    def _require(self, candidates: Sequence[DataCache]) -> None:
        if not candidates:
            raise ServiceError("router invoked with no candidate caches")


class StickyRouter(CacheRouter):
    """One client, one cache: hash the client id over the replicas.

    CRC-32 rather than :func:`hash` — Python string hashing is salted per
    process and routing must be reproducible across runs and servers.

    Stickiness is modulo the *current* candidate list, so a membership
    change (detach, admit) re-sticks every client deterministically over
    the survivors — clients of a departed replica redistribute instead of
    erroring, at the price of some clients landing on a replica whose
    bounds their own refreshes never tightened (fan-out lockstep makes
    that costless within a group).
    """

    def route(
        self,
        candidates: Sequence[DataCache],
        client_id: str,
        table_name: str,
        loads: Mapping[str, int],
    ) -> DataCache:
        self._require(candidates)
        return candidates[zlib.crc32(client_id.encode()) % len(candidates)]


class LeastLoadedRouter(CacheRouter):
    """Fewest in-flight queries wins; cache-id tie-break."""

    def route(
        self,
        candidates: Sequence[DataCache],
        client_id: str,
        table_name: str,
        loads: Mapping[str, int],
    ) -> DataCache:
        self._require(candidates)
        return min(
            candidates,
            key=lambda cache: (loads.get(cache.cache_id, 0), cache.cache_id),
        )


class WidestBoundsRouter(CacheRouter):
    """Route away from wide bounds: tightest replica for the table wins.

    Ranks each candidate by the total width of the queried table's
    subscribed bound functions **evaluated at the current clock**
    (:meth:`~repro.replication.cache.DataCache.current_table_width`) and
    picks the minimum.  Evaluating at now matters: the materialized
    cells only reflect each replica's last ``sync_bounds``, so an idle
    replica's *stale* cells look deceptively tight while its true bounds
    have kept widening — ranking on cells would systematically route to
    the stalest replica, the inverse of the goal.  Under fan-out the
    replicas usually tie; replicas that subscribed late or serve
    disjoint pinned traffic drift apart, and this router sends queries
    where the refresh bill is smallest right now.
    """

    def __init__(self) -> None:
        #: (cache_id, table) → (state fingerprint, width): ranking a
        #: candidate is O(table subscriptions), so repeat routes against
        #: unchanged state (same clock, no refreshes applied since) reuse
        #: the evaluated width instead of re-walking every bound.
        self._memo: dict[tuple[str, str], tuple[tuple, float]] = {}

    def route(
        self,
        candidates: Sequence[DataCache],
        client_id: str,
        table_name: str,
        loads: Mapping[str, int],
    ) -> DataCache:
        self._require(candidates)
        return min(
            candidates,
            key=lambda cache: (
                self._width_of(cache, table_name),
                cache.cache_id,
            ),
        )

    def _width_of(self, cache: DataCache, table_name: str) -> float:
        # Bound functions change only when a refresh (or a cardinality
        # change) lands; together with the clock reading that makes a
        # cheap fingerprint of everything current_table_width reads.
        fingerprint = (
            cache.clock(),
            cache.refreshes_received,
            cache.fanout_refreshes_received,
            len(cache.table(table_name)),
        )
        memo_key = (cache.cache_id, table_name)
        cached = self._memo.get(memo_key)
        if cached is not None and cached[0] == fingerprint:
            return cached[1]
        width = cache.current_table_width(table_name)
        self._memo[memo_key] = (fingerprint, width)
        return width
