"""A short-TTL cache of bounded answers for repeat queries.

A bounded answer stays *valid* as long as the cached bounds it was
computed from have not widened past the query's constraint — over a short
horizon, an answer computed for one client can serve an identical query
from another client without touching the executor at all.  Entries are
keyed on the full query identity ``(cache, table, aggregate, column,
predicate, width)`` and are served only while young (``ttl``, measured on
the system's clock so simulated-time tests stay deterministic) *and*
still satisfying the requested constraint — a stale or too-wide entry is
never returned.

This is deliberately conservative: a bound that satisfied ``WITHIN R`` at
time ``t`` is a *correct* answer at ``t + ttl`` only if its objects'
bound growth over ``ttl`` is tolerated by the deployment.  The TTL
defaults are therefore tiny, and the cache re-checks
:meth:`~repro.core.answer.BoundedAnswer.meets` on every hit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterable

from repro.core.answer import BoundedAnswer
from repro.predicates.ast import Predicate
from repro.telemetry.registry import MetricsRegistry

__all__ = ["ResultCache"]


class ResultCache:
    """An LRU + TTL cache of :class:`BoundedAnswer` keyed by query identity.

    Hit/miss/expiry/eviction/invalidation counters live in the telemetry
    registry (``trapp_result_cache_events_total``); the historical
    attributes (``cache.hits`` …) and :meth:`stats` read the same
    children, so the wire ``metrics`` op and the legacy dict cannot
    disagree.
    """

    #: Attribute name → ``trapp_result_cache_events_total`` event label.
    _EVENTS = {
        "hits": "hit",
        "misses": "miss",
        "expirations": "expiration",
        "evictions": "eviction",
        "invalidations": "invalidation",
    }

    def __init__(
        self,
        ttl: float,
        clock: Callable[[], float],
        max_entries: int = 2048,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.ttl = ttl
        self.clock = clock
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, tuple[BoundedAnswer, float]] = (
            OrderedDict()
        )
        # Refresh-driven invalidation index: (scope, table) → keys, where
        # scope is the cache or group id the entry was stored under.  A
        # dispatched refresh that updates table T evicts T's entries
        # directly instead of waiting for TTL/width expiry.
        self._by_table: dict[tuple[str, str], set[Hashable]] = {}
        # A standalone cache (no service) gets a private enabled registry
        # so its counters keep working.
        if registry is None:
            registry = MetricsRegistry()
        family = registry.counter(
            "trapp_result_cache_events_total",
            "Result-cache behavior: hits, misses, expiries, evictions, "
            "refresh-driven invalidations",
            ("event",),
        )
        self._events = {
            attr: family.labels(event=label)
            for attr, label in self._EVENTS.items()
        }
        self._g_entries = registry.gauge(
            "trapp_result_cache_entries",
            "Bounded answers currently held by the result cache",
        )

    def __getattr__(self, name: str) -> int:
        events = object.__getattribute__(self, "__dict__").get("_events")
        if events is not None and name in events:
            return int(events[name].value)
        raise AttributeError(name)

    # ------------------------------------------------------------------
    @staticmethod
    def make_key(
        cache_id: str,
        tables: "str | tuple[str, ...]",
        aggregate: str,
        column: "Hashable | None",
        predicate: Predicate | None,
        max_width: float,
        epsilon: float | None = None,
        extra: Hashable = None,
    ) -> Hashable:
        """The full identity of a shareable query.

        ``tables`` is the table name for single-table statements or the
        ordered tuple of referenced table names for joins; ``column``
        accordingly a column name or a join's ``(table, column)`` pair.
        ``epsilon`` is part of the identity because it changes which
        tuples CHOOSE_REFRESH picks (and therefore the answer's refresh
        metadata), even though any epsilon's answer meets the width.
        ``extra`` carries statement-class identity beyond the aggregate —
        GROUP BY columns, a TOP-N rank — so differently-shaped answers
        never alias.
        """
        predicate_key = str(predicate) if predicate is not None else ""
        if isinstance(tables, str):
            tables = (tables,)
        return (
            cache_id, tuple(tables), aggregate, column, predicate_key,
            max_width, epsilon, extra,
        )

    # ------------------------------------------------------------------
    def get(
        self, key: Hashable, max_width: float, allow_degraded: bool = False
    ) -> BoundedAnswer | None:
        """A still-valid cached answer for ``key``, or ``None``.

        Valid means: younger than ``ttl`` *and* still no wider than the
        requested constraint.  A *degraded* answer is by definition wider
        than its constraint, so it can only ever be served from a lookup
        that opts in with ``allow_degraded`` — the service's cache-scoped
        degraded tier, probed while the underlying sources are known to
        be failing.  TTL and refresh-driven invalidation still apply.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._events["misses"].inc()
            return None
        answer, stored_at = entry
        if self.clock() - stored_at > self.ttl:
            self._drop(key)
            self._events["expirations"].inc()
            self._events["misses"].inc()
            return None
        if answer.degraded:
            if not allow_degraded:
                self._events["misses"].inc()
                return None
        elif not answer.meets(max_width):
            self._events["misses"].inc()
            return None
        self._entries.move_to_end(key)
        self._events["hits"].inc()
        return answer

    def put(self, key: Hashable, answer: BoundedAnswer) -> None:
        self._entries[key] = (answer, self.clock())
        self._entries.move_to_end(key)
        for bucket in self._buckets_of(key):
            bucket.add(key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            for bucket in self._buckets_of(evicted):
                bucket.discard(evicted)
            self._events["evictions"].inc()
        self._g_entries.set(len(self._entries))

    # ------------------------------------------------------------------
    def invalidate_table(
        self, table: str, scopes: "Iterable[str] | None" = None
    ) -> int:
        """Evict entries whose query read ``table`` (refresh-driven).

        A dispatched refresh revealed new master values for the table's
        tuples; answers computed before it may no longer contain the
        current truth, so they must not be served for their remaining
        TTL.  ``scopes`` limits eviction to entries stored under the
        named cache/group ids (the replicas the refresh actually
        tightened); ``None`` evicts the table's entries everywhere.
        Returns the number of entries dropped.
        """
        if scopes is None:
            buckets = [
                index_key
                for index_key in self._by_table
                if index_key[1] == table
            ]
        else:
            buckets = [(scope, table) for scope in scopes]
        dropped = 0
        for index_key in buckets:
            for key in list(self._by_table.get(index_key, ())):
                if key in self._entries:
                    # Joins index one key under several tables; drop it
                    # from every bucket so no ghost reference survives.
                    self._drop(key)
                    dropped += 1
            self._by_table.pop(index_key, None)
        self._events["invalidations"].inc(dropped)
        self._g_entries.set(len(self._entries))
        return dropped

    #: Bucket for keys not shaped like :meth:`make_key` tuples — they
    #: stay cacheable but are invisible to table-scoped invalidation.
    _UNINDEXED = ("", "")

    def _buckets_of(self, key: Hashable) -> list[set[Hashable]]:
        """Every (scope, table) bucket a full query key belongs to.

        A join key references several tables and must be indexed under
        *each* of them — a refresh of any referenced table stales the
        cached answer.  Only :meth:`make_key`-shaped tuples participate
        in refresh-driven invalidation; any other hashable key (the
        cache accepts them) lands in a shared unindexed bucket.
        """
        if isinstance(key, tuple) and len(key) >= 2:
            scope, tables = key[0], key[1]
            if isinstance(tables, str):
                tables = (tables,)
            if (
                isinstance(scope, str)
                and isinstance(tables, tuple)
                and tables
                and all(isinstance(name, str) for name in tables)
            ):
                return [
                    self._by_table.setdefault((scope, name), set())
                    for name in tables
                ]
        return [self._by_table.setdefault(self._UNINDEXED, set())]

    def _drop(self, key: Hashable) -> None:
        del self._entries[key]
        for bucket in self._buckets_of(key):
            bucket.discard(key)
        self._g_entries.set(len(self._entries))

    def clear(self) -> None:
        self._entries.clear()
        self._by_table.clear()
        self._g_entries.set(0)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
