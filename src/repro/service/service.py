"""The concurrent TRAPP query service.

:class:`QueryService` wraps a :class:`~repro.replication.system.TrappSystem`
with the serving layer the paper's Figure 3 assumes but never specifies:
many clients issuing bounded aggregate queries against shared caches, one
refresh pipeline.

Per query the flow is:

1. **admission** — a global in-flight ceiling (backpressure: excess
   queries wait), a per-client in-flight allowance (excess queries are
   rejected with :class:`~repro.errors.ServiceOverloadError`), and a
   per-client *precision floor* — clients may not demand answers tighter
   than their floor (:class:`~repro.errors.AdmissionError`), which caps
   the refresh spend any one client can trigger;
2. **result cache** — repeat queries whose cached bounded answer is young
   and still satisfies the constraint are served without touching the
   executor (:class:`~repro.service.results.ResultCache`);
3. **execution** — the shared per-cache executor runs as a resumable
   generator; at its refresh point the query suspends into the
   :class:`~repro.service.scheduler.RefreshScheduler`, which merges it
   with every other in-flight query's refresh before resuming step 3.

Concurrency safety rests on two properties: query planning (step 1 +
CHOOSE_REFRESH) runs synchronously between await points, so no other
query can mutate the cache mid-plan; and coalesced refreshes only ever
collapse *more* bounds than a query planned for, which never widens its
answer.  ``sync_bounds`` is likewise skipped while any query sits
suspended at its refresh point — it planned against the current
materialization, and widening bounds under it could void its step-3
guarantee.  (Under sustained refresh-heavy overlap this can defer
re-syncing; bounding that staleness is a ROADMAP open item.)
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.core.answer import BoundedAnswer
from repro.core.constraints import AbsolutePrecision
from repro.core.refresh.base import CostFunc
from repro.errors import AdmissionError, ServiceError, ServiceOverloadError
from repro.extensions.batching import BatchedCostModel
from repro.replication.costs import CostModel
from repro.replication.system import TrappSystem
from repro.service.results import ResultCache
from repro.service.scheduler import RefreshScheduler
from repro.sql.compiler import QueryPlan, compile_statement
from repro.sql.parser import parse_statement

__all__ = ["QueryService", "ClientSession", "ServiceResult"]


@dataclass(frozen=True, slots=True)
class ServiceResult:
    """A service reply: the bounded answer plus serving metadata."""

    answer: BoundedAnswer
    #: True when this query did not execute itself: the answer came from
    #: the result cache, or from an identical query already in flight
    #: (single-flight).  ``answer.refreshed``/``answer.refresh_cost`` then
    #: describe the execution that produced the shared answer.
    cached: bool
    client_id: str


class ClientSession:
    """One client's view of the service, with its admission overrides."""

    def __init__(
        self,
        service: "QueryService",
        client_id: str,
        precision_floor: float | None = None,
        max_inflight: int | None = None,
    ) -> None:
        self.service = service
        self.client_id = client_id
        self.precision_floor = precision_floor
        self.max_inflight = max_inflight

    async def query(
        self,
        cache_id: str,
        sql: str,
        cost: CostFunc | CostModel | None = None,
        epsilon: float | None = None,
    ) -> ServiceResult:
        return await self.service.query(
            cache_id,
            sql,
            client_id=self.client_id,
            cost=cost,
            epsilon=epsilon,
            precision_floor=self.precision_floor,
            max_inflight=self.max_inflight,
        )


class QueryService:
    """Admission control + result cache + coalesced refreshes over one system."""

    def __init__(
        self,
        system: TrappSystem,
        max_inflight: int = 64,
        max_inflight_per_client: int = 8,
        precision_floor: float = 0.0,
        result_ttl: float = 1.0,
        result_cache_size: int = 2048,
        cost_model: BatchedCostModel | None = None,
        tick_interval: float = 0.0,
        rebatch: bool = True,
        network_delay: float = 0.0,
        adaptive_tick: bool = False,
        tick_min: float = 0.0,
        tick_max: float = 0.05,
    ) -> None:
        self.system = system
        self.max_inflight_per_client = max_inflight_per_client
        self.precision_floor = precision_floor
        self.scheduler = RefreshScheduler(
            cost_model=cost_model,
            tick_interval=tick_interval,
            rebatch=rebatch,
            network_delay=network_delay,
            adaptive_tick=adaptive_tick,
            tick_min=tick_min,
            tick_max=tick_max,
        )
        self.results = ResultCache(
            ttl=result_ttl, clock=system.clock.now, max_entries=result_cache_size
        )
        self._semaphore = asyncio.Semaphore(max_inflight)
        self._inflight_by_client: dict[str, int] = {}
        #: Queries currently suspended at a refresh tick, per cache — the
        #: only state in which re-syncing bounds under them is unsafe.
        self._suspended_by_cache: dict[str, int] = {}
        #: Single-flight: identical queries already executing, by cache key.
        self._inflight_results: dict = {}
        self.queries_served = 0
        self.queries_rejected = 0
        self.singleflight_joins = 0

    # ------------------------------------------------------------------
    def session(
        self,
        client_id: str,
        precision_floor: float | None = None,
        max_inflight: int | None = None,
    ) -> ClientSession:
        """A per-client handle carrying that client's admission settings."""
        return ClientSession(self, client_id, precision_floor, max_inflight)

    # ------------------------------------------------------------------
    async def query(
        self,
        cache_id: str,
        sql: str,
        client_id: str = "anon",
        cost: CostFunc | CostModel | None = None,
        epsilon: float | None = None,
        precision_floor: float | None = None,
        max_inflight: int | None = None,
    ) -> ServiceResult:
        """Parse, admit, and execute one TRAPP SQL statement."""
        cache = self.system.cache(cache_id)
        statement = parse_statement(sql)
        plan = compile_statement(statement, cache.catalog)
        if not isinstance(plan, QueryPlan):
            raise ServiceError(
                "the concurrent service serves single-table queries only: "
                "join refresh plans cannot be coalesced yet (they lack a "
                "per-table decomposition of the §7 refresh sets).  Run "
                "join queries directly through TrappSystem.query(), which "
                "executes them serially against the cache — see "
                "docs/ARCHITECTURE.md, 'Known limitations'."
            )
        self._admit(client_id, plan, precision_floor, max_inflight)

        # A caller-supplied cost model has no stable identity to key on,
        # so such queries neither read nor feed the shared answers.
        shareable = cost is None
        if not shareable:
            answer = await self._execute(
                cache_id, cache, plan, client_id, cost, epsilon
            )
            self.queries_served += 1
            return ServiceResult(answer=answer, cached=False, client_id=client_id)

        key = ResultCache.make_key(
            cache_id,
            plan.table.name,
            plan.aggregate,
            plan.column,
            plan.predicate,
            plan.constraint.width,
            epsilon,
        )
        while True:
            hit = self.results.get(key, plan.constraint.width)
            if hit is not None:
                self.queries_served += 1
                return ServiceResult(answer=hit, cached=True, client_id=client_id)

            # Single-flight: an identical query is already executing —
            # await its answer instead of planning the same refresh again.
            # (The shield keeps one cancelled follower from cancelling the
            # shared future under the leader.)
            leader = self._inflight_results.get(key)
            if leader is None:
                break
            try:
                answer = await asyncio.shield(leader)
            except asyncio.CancelledError:
                if leader.cancelled():
                    # The leader (not us) was cancelled mid-flight; go
                    # around and execute ourselves.
                    continue
                raise
            self.singleflight_joins += 1
            self.queries_served += 1
            return ServiceResult(answer=answer, cached=True, client_id=client_id)

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Nobody may ever join before we finish; silence the "exception
        # never retrieved" warning for that case.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight_results[key] = future
        try:
            answer = await self._execute(
                cache_id, cache, plan, client_id, cost, epsilon
            )
        except BaseException as exc:
            if not future.done():
                # Our own cancellation must read as "leader gone", not as
                # an error verdict on the query, so followers re-execute.
                if isinstance(exc, asyncio.CancelledError):
                    future.cancel()
                else:
                    future.set_exception(exc)
            raise
        finally:
            self._inflight_results.pop(key, None)
        if not future.done():
            future.set_result(answer)
        self.results.put(key, answer)
        self.queries_served += 1
        return ServiceResult(answer=answer, cached=False, client_id=client_id)

    # ------------------------------------------------------------------
    def _admit(
        self,
        client_id: str,
        plan: QueryPlan,
        precision_floor: float | None,
        max_inflight: int | None,
    ) -> None:
        floor = precision_floor if precision_floor is not None else self.precision_floor
        if (
            floor > 0
            and isinstance(plan.constraint, AbsolutePrecision)
            and plan.constraint.width < floor
        ):
            self.queries_rejected += 1
            raise AdmissionError(
                f"client {client_id!r} may not request precision tighter than "
                f"WITHIN {floor:g} (asked for WITHIN {plan.constraint.width:g})"
            )
        allowance = (
            max_inflight if max_inflight is not None else self.max_inflight_per_client
        )
        if self._inflight_by_client.get(client_id, 0) >= allowance:
            self.queries_rejected += 1
            raise ServiceOverloadError(
                f"client {client_id!r} already has {allowance} queries in flight"
            )

    async def _execute(
        self,
        cache_id: str,
        cache,
        plan: QueryPlan,
        client_id: str,
        cost: CostFunc | CostModel | None,
        epsilon: float | None,
    ) -> BoundedAnswer:
        self._inflight_by_client[client_id] = (
            self._inflight_by_client.get(client_id, 0) + 1
        )
        try:
            async with self._semaphore:
                # Re-evaluating bound functions could widen a bound a
                # suspended query already planned against, so hold off
                # while any query on this cache awaits a refresh tick.
                # Planning and recomputation run synchronously between
                # awaits and are never exposed.
                if self._suspended_by_cache.get(cache_id, 0) == 0:
                    cache.sync_bounds()
                executor = self.system.executor_for(cache_id, epsilon)
                steps = executor.execute_steps(
                    plan.table,
                    plan.aggregate,
                    plan.column,
                    plan.constraint,
                    plan.predicate,
                    TrappSystem._resolve_cost(cost),
                    # The per-tuple metadata sweep is only worth paying
                    # when the scheduler will actually rebatch.
                    rebatch_metadata=self.scheduler.rebatch,
                )
                try:
                    request = next(steps)
                    while True:
                        self._suspended_by_cache[cache_id] = (
                            self._suspended_by_cache.get(cache_id, 0) + 1
                        )
                        try:
                            effective = await self.scheduler.submit(cache, request)
                        finally:
                            self._suspended_by_cache[cache_id] -= 1
                            if self._suspended_by_cache[cache_id] <= 0:
                                del self._suspended_by_cache[cache_id]
                        request = steps.send(effective)
                except StopIteration as stop:
                    return stop.value
        finally:
            self._inflight_by_client[client_id] -= 1
            # Drop zeroed entries: a long-running server sees unboundedly
            # many distinct client ids.
            if self._inflight_by_client[client_id] <= 0:
                del self._inflight_by_client[client_id]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving counters: queries, cache behavior, coalescing effect."""
        return {
            "queries_served": self.queries_served,
            "queries_rejected": self.queries_rejected,
            "singleflight_joins": self.singleflight_joins,
            "result_cache": self.results.stats(),
            "scheduler": self.scheduler.stats.as_dict(),
        }
