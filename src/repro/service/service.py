"""The concurrent TRAPP query service.

:class:`QueryService` wraps a :class:`~repro.replication.system.TrappSystem`
with the serving layer the paper's Figure 3 assumes but never specifies:
many clients issuing bounded aggregate queries against shared caches —
now possibly a whole :class:`~repro.replication.fanout.CacheGroup` of
regional replicas — and one refresh pipeline.

Per query the flow is:

1. **admission** — a global in-flight ceiling (backpressure: excess
   queries wait), a per-client in-flight allowance (excess queries are
   rejected with :class:`~repro.errors.ServiceOverloadError`), and a
   per-client *precision floor* — clients may not demand answers tighter
   than their floor (:class:`~repro.errors.AdmissionError`), which caps
   the refresh spend any one client can trigger;
2. **routing** — ``query(cache_id, …)`` pins a cache; ``query(group_id,
   …)`` asks the pluggable :class:`~repro.service.routing.CacheRouter`
   (sticky-by-client by default; least-loaded and widest-bounds-aware
   ship too) to pick a replica subscribed to the queried table;
3. **result cache** — repeat queries whose cached bounded answer is young
   and still satisfies the constraint are served without touching the
   executor (:class:`~repro.service.results.ResultCache`).  Entries are
   scoped to the sharing domain: one *group-scoped* entry per query for
   the replicas of a fan-out group (fan-out keeps them interchangeable,
   so any replica's answer serves a query routed or pinned to any
   other), one *cache-scoped* entry otherwise.  Dispatched refreshes
   *invalidate* affected entries immediately (the scheduler reports
   every refreshed table through ``on_refresh``) instead of waiting for
   TTL/width expiry;
4. **execution** — the shared per-cache executor runs as a resumable
   generator; at its refresh point the query suspends into the
   :class:`~repro.service.scheduler.RefreshScheduler`, which merges it
   with every other in-flight query's refresh — across queries and, for
   grouped replicas, across caches — before resuming step 3.

Concurrency safety rests on two properties: query planning (step 1 +
CHOOSE_REFRESH) runs synchronously between await points, so no other
query can mutate the cache mid-plan; and coalesced refreshes only ever
collapse *more* bounds than a query planned for, which never widens its
answer.  ``sync_bounds`` is likewise skipped while any query sits
suspended at its refresh point on that cache — it planned against the
current materialization, and widening bounds under it could void its
step-3 guarantee.  Under sustained refresh-heavy overlap that deferral
used to be unbounded; ``max_sync_deferrals`` now caps it: on the Nth
consecutive deferral the service syncs anyway, and every query that was
suspended across the forced sync is *re-validated* when it completes —
an answer still meeting its constraint passes through, one widened past
it is aborted and retried once, then surfaced as the retryable
:class:`~repro.errors.StaleRefreshError`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.core.answer import BoundedAnswer
from repro.core.constraints import AbsolutePrecision
from repro.core.refresh.base import CostFunc
from repro.errors import (
    AdmissionError,
    ConstraintUnsatisfiableError,
    ServiceError,
    ServiceOverloadError,
    StaleRefreshError,
)
from repro.extensions.batching import BatchedCostModel
from repro.faults import FaultInjector, RetryPolicy
from repro.replication.cache import DataCache
from repro.replication.costs import CostModel
from repro.replication.system import TrappSystem
from repro.service.results import ResultCache
from repro.service.routing import CacheRouter, StickyRouter
from repro.service.scheduler import RefreshScheduler
from repro.sql.compiler import AnyQueryPlan, compile_statement
from repro.sql.parser import parse_statement
from repro.sql.steps import plan_steps
from repro.telemetry import Telemetry

__all__ = ["QueryService", "ClientSession", "ServiceResult"]


@dataclass(frozen=True, slots=True)
class ServiceResult:
    """A service reply: the bounded answer plus serving metadata."""

    answer: BoundedAnswer
    #: True when this query did not execute itself: the answer came from
    #: the result cache, or from an identical query already in flight
    #: (single-flight).  ``answer.refreshed``/``answer.refresh_cost`` then
    #: describe the execution that produced the shared answer.
    cached: bool
    client_id: str
    #: The cache that served (or would have served) the query — the pinned
    #: cache, or the replica the router picked for a group query.
    cache_id: str = ""


class ClientSession:
    """One client's view of the service, with its admission overrides."""

    def __init__(
        self,
        service: "QueryService",
        client_id: str,
        precision_floor: float | None = None,
        max_inflight: int | None = None,
    ) -> None:
        self.service = service
        self.client_id = client_id
        self.precision_floor = precision_floor
        self.max_inflight = max_inflight

    async def query(
        self,
        cache_id: str,
        sql: str,
        cost: CostFunc | CostModel | None = None,
        epsilon: float | None = None,
    ) -> ServiceResult:
        return await self.service.query(
            cache_id,
            sql,
            client_id=self.client_id,
            cost=cost,
            epsilon=epsilon,
            precision_floor=self.precision_floor,
            max_inflight=self.max_inflight,
        )


class QueryService:
    """Admission + routing + result cache + coalesced refreshes over one system."""

    def __init__(
        self,
        system: TrappSystem,
        max_inflight: int = 64,
        max_inflight_per_client: int = 8,
        precision_floor: float = 0.0,
        result_ttl: float = 1.0,
        result_cache_size: int = 2048,
        cost_model: BatchedCostModel | None = None,
        tick_interval: float = 0.0,
        rebatch: bool = True,
        network_delay: float = 0.0,
        adaptive_tick: bool = False,
        tick_min: float = 0.0,
        tick_max: float = 0.05,
        router: CacheRouter | None = None,
        cross_cache: bool = True,
        max_sync_deferrals: int | None = None,
        telemetry: Telemetry | None = None,
        telemetry_enabled: bool = True,
        retry_policy: "RetryPolicy | None" = None,
        fault_injector: "FaultInjector | None" = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
    ) -> None:
        self.system = system
        self.max_inflight_per_client = max_inflight_per_client
        self.precision_floor = precision_floor
        #: Replica selection for group queries; sticky-by-client default.
        self.router = router if router is not None else StickyRouter()
        #: Bound-staleness cap: after this many consecutive deferred
        #: ``sync_bounds`` on one cache, sync anyway and re-validate the
        #: queries suspended across it.  ``None`` = defer indefinitely
        #: (the pre-cap behavior).
        self.max_sync_deferrals = max_sync_deferrals
        #: One registry + tracer per deployment (PR 7): the service's own
        #: counters, the scheduler's, the result cache's, and the live
        #: system collectors all land here, and the ``metrics``/``trace``
        #: wire ops serve it.  Spans are timestamped on the system's
        #: simulation clock; pass ``telemetry_enabled=False`` (or a
        #: disabled ``Telemetry``) for the unmetered no-op path.
        if telemetry is None:
            telemetry = Telemetry(
                enabled=telemetry_enabled, clock=system.clock.now
            )
        self.telemetry = telemetry
        telemetry.observe_system(system)
        #: Fault plane (PR 8): an attached injector drives the chaos
        #: schedule; the retry policy and per-source breakers live in the
        #: scheduler and are active regardless (with no faults they are
        #: pure pass-through).
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.attach(system)
        self.scheduler = RefreshScheduler(
            cost_model=cost_model,
            tick_interval=tick_interval,
            rebatch=rebatch,
            network_delay=network_delay,
            adaptive_tick=adaptive_tick,
            tick_min=tick_min,
            tick_max=tick_max,
            cross_cache=cross_cache,
            on_refresh=self._on_refresh_dispatched,
            registry=telemetry.registry,
            retry_policy=retry_policy,
            fault_injector=fault_injector,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
        )
        self.results = ResultCache(
            ttl=result_ttl,
            clock=system.clock.now,
            max_entries=result_cache_size,
            registry=telemetry.registry,
        )
        self._semaphore = asyncio.Semaphore(max_inflight)
        self._inflight_by_client: dict[str, int] = {}
        self._inflight_by_cache: dict[str, int] = {}
        #: Queries currently suspended at a refresh tick, per cache — the
        #: only state in which re-syncing bounds under them is unsafe.
        self._suspended_by_cache: dict[str, int] = {}
        #: Consecutive sync_bounds deferrals per cache (staleness cap).
        self._sync_deferrals: dict[str, int] = {}
        #: Bumped on every cap-forced sync; queries re-validate when the
        #: generation moved while they were in flight.
        self._sync_generation: dict[str, int] = {}
        #: Single-flight: identical queries already executing, by cache key.
        self._inflight_results: dict = {}
        #: Replicas mid-detach: kept out of routing while their in-flight
        #: queries drain, so the ledger count falls monotonically to zero.
        self._draining: set[str] = set()
        registry = telemetry.registry
        queries = registry.counter(
            "trapp_queries_total",
            "Queries by admission outcome",
            ("outcome",),
        )
        self._c_served = queries.labels(outcome="served")
        self._c_rejected = queries.labels(outcome="rejected")
        events = registry.counter(
            "trapp_service_events_total",
            "Serving-pipeline events: single-flight joins, staleness-cap "
            "syncs and retries",
            ("event",),
        )
        self._c_singleflight = events.labels(event="singleflight_join")
        self._c_forced_sync = events.labels(event="forced_sync")
        self._c_revalidation = events.labels(event="revalidation")
        self._c_stale_retry = events.labels(event="stale_retry")
        self._c_stale_abort = events.labels(event="stale_abort")
        #: Per-cache routing balance: every admitted query lands here
        #: under the replica that served it, router-picked or pinned.
        self._c_routed = registry.counter(
            "trapp_routed_queries_total",
            "Queries per serving cache (routing balance)",
            ("cache", "mode"),
        )
        self._h_admission_wait = registry.histogram(
            "trapp_admission_wait_seconds",
            "Wall-clock wait for the global in-flight semaphore",
        )
        #: Fraction of (tuple, leaf) decisions step 1 materialized from
        #: endpoint-index windows; observed only when the index route
        #: classified the query.  Low values mean binary search decided
        #: almost every tuple wholesale (the O(log n + k) regime).
        self._h_window_fraction = registry.histogram(
            "trapp_index_window_fraction",
            "Fraction of classification decisions taken from index windows",
            buckets=(
                0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0,
            ),
        )
        self._c_degraded = registry.counter(
            "trapp_degraded_answers_total",
            "Queries finished in degraded mode: bounds wider than requested "
            "because sources stayed unreachable",
        )
        #: Plain-int mirror of the degraded counter: gates the degraded
        #: result-tier probe so a fault-free deployment never pays (or
        #: telemeters) the extra lookup.
        self._degraded_count = 0

    # Thin views over the registry counters (the historical stats API).
    @property
    def queries_served(self) -> int:
        return int(self._c_served.value)

    @property
    def queries_rejected(self) -> int:
        return int(self._c_rejected.value)

    @property
    def singleflight_joins(self) -> int:
        return int(self._c_singleflight.value)

    @property
    def forced_syncs(self) -> int:
        return int(self._c_forced_sync.value)

    @property
    def revalidations(self) -> int:
        return int(self._c_revalidation.value)

    @property
    def stale_retries(self) -> int:
        return int(self._c_stale_retry.value)

    @property
    def stale_aborts(self) -> int:
        return int(self._c_stale_abort.value)

    @property
    def degraded_answers(self) -> int:
        return self._degraded_count

    # ------------------------------------------------------------------
    def session(
        self,
        client_id: str,
        precision_floor: float | None = None,
        max_inflight: int | None = None,
    ) -> ClientSession:
        """A per-client handle carrying that client's admission settings."""
        return ClientSession(self, client_id, precision_floor, max_inflight)

    # ------------------------------------------------------------------
    def _resolve_cache(
        self, cache_id: str, client_id: str, table_names: tuple[str, ...]
    ) -> tuple[DataCache, "object | None"]:
        """``(replica, group)`` for one query's target name.

        A concrete cache id pins that cache (its group, if any, still
        scopes result sharing); a group id routes across the group's
        replicas subscribed to *every* queried table — a join can only
        run on a replica holding all of its base tables.
        """
        if self.system.is_group(cache_id):
            group = self.system.group(cache_id)
            candidates = group.caches_of_table(table_names[0])
            for name in table_names[1:]:
                subscribed = {
                    c.cache_id for c in group.caches_of_table(name)
                }
                candidates = [
                    c for c in candidates if c.cache_id in subscribed
                ]
            if self._draining:
                # A draining replica finishes what it has but takes no new
                # queries — its clients re-stick to survivors *now*, not
                # at detach completion (membership-change re-sticking is
                # what the routers' candidate-list contract provides).
                undrained = [
                    c for c in candidates if c.cache_id not in self._draining
                ]
                if undrained:
                    candidates = undrained
            if not candidates:
                raise ServiceError(
                    f"no cache in group {cache_id!r} is subscribed to "
                    f"every table in {table_names!r}"
                )
            route_key = "+".join(table_names)
            cache = self.router.route(
                candidates, client_id, route_key, self._inflight_by_cache
            )
            return cache, group
        cache = self.system.cache(cache_id)
        return cache, cache.group

    # ------------------------------------------------------------------
    async def query(
        self,
        cache_id: str,
        sql: str,
        client_id: str = "anon",
        cost: CostFunc | CostModel | None = None,
        epsilon: float | None = None,
        precision_floor: float | None = None,
        max_inflight: int | None = None,
    ) -> ServiceResult:
        """Parse, admit, route, and execute one TRAPP SQL statement.

        Every statement class the compiler knows flows through here —
        §4 single-table aggregates, §7 joins, §8.1 GROUP BY and TOP-N,
        and registered extension aggregates such as MEDIAN.  All of them
        speak the shared step protocol (:func:`~repro.sql.steps.plan_steps`),
        so admission, routing, result caching, and coalesced refresh
        apply uniformly; a join's per-round selections decompose into
        per-table refresh plans the scheduler merges like any other.
        """
        trace = self.telemetry.tracer.start(client_id, sql)
        try:
            return await self._query_traced(
                cache_id, sql, client_id, cost, epsilon,
                precision_floor, max_inflight, trace,
            )
        except (AdmissionError, ServiceOverloadError):
            trace.finish(status="rejected")
            raise
        except BaseException as exc:
            trace.finish(status="error", error=type(exc).__name__)
            raise

    async def _query_traced(
        self,
        cache_id: str,
        sql: str,
        client_id: str,
        cost: CostFunc | CostModel | None,
        epsilon: float | None,
        precision_floor: float | None,
        max_inflight: int | None,
        trace,
    ) -> ServiceResult:
        statement = parse_statement(sql)
        is_group = self.system.is_group(cache_id)
        cache, group = self._resolve_cache(cache_id, client_id, statement.tables)
        plan = compile_statement(statement, cache.catalog)
        self._admit(client_id, plan, precision_floor, max_inflight)
        trace.step("admit", width=plan.constraint.width)
        trace.step(
            "route",
            cache=cache.cache_id,
            mode="routed" if is_group else "pinned",
        )
        self._c_routed.labels(
            cache=cache.cache_id, mode="routed" if is_group else "pinned"
        ).inc()

        # A caller-supplied cost model has no stable identity to key on,
        # so such queries neither read nor feed the shared answers.
        shareable = cost is None
        if not shareable:
            answer = await self._execute_revalidated(
                cache, plan, client_id, cost, epsilon, trace
            )
            self._c_served.inc()
            trace.finish(cached=False, width=answer.width)
            return ServiceResult(
                answer=answer,
                cached=False,
                client_id=client_id,
                cache_id=cache.cache_id,
            )

        def scoped_key(scope: str):
            return ResultCache.make_key(
                scope,
                plan.table_names,
                plan.aggregate,
                plan.column_key,
                plan.predicate,
                plan.constraint.width,
                epsilon,
                extra=plan.cache_extra,
            )

        # Result scope: fan-out keeps a group's replicas interchangeable,
        # so their answers share one group-scoped entry (and one
        # single-flight leadership) — whether the query was routed or
        # pinned.  Without fan-out (standalone caches, or a fanout=False
        # group — the benchmark's independent-caches ablation) each cache
        # scopes its own entries and nothing coalesces across replicas,
        # mirroring the scheduler's gating exactly.
        shared = group is not None and group.fanout
        primary_key = scoped_key(group.group_id if shared else cache.cache_id)
        while True:
            hit = self.results.get(primary_key, plan.constraint.width)
            if hit is not None:
                self._c_served.inc()
                trace.finish(cached=True, source="result_cache", width=hit.width)
                return ServiceResult(
                    answer=hit,
                    cached=True,
                    client_id=client_id,
                    cache_id=cache.cache_id,
                )

            # Degraded tier (satellite 2): answers served under failure
            # live in a *cache-scoped* tier flagged in the key extra —
            # never the shared tier, where a sibling with working sources
            # would wrongly serve them.  Probed only once a degraded
            # answer exists, so fault-free runs never pay the lookup.
            if self._degraded_count:
                stale = self.results.get(
                    self._degraded_key(cache, plan, epsilon),
                    plan.constraint.width,
                    allow_degraded=True,
                )
                if stale is not None:
                    self._c_served.inc()
                    trace.step(
                        "degraded",
                        sources=list(stale.unreachable_sources),
                        width=stale.width,
                    )
                    trace.finish(
                        cached=True, source="degraded_cache", width=stale.width
                    )
                    return ServiceResult(
                        answer=stale,
                        cached=True,
                        client_id=client_id,
                        cache_id=cache.cache_id,
                    )

            # Single-flight: an identical query is already executing —
            # await its answer instead of planning the same refresh again.
            # (The shield keeps one cancelled follower from cancelling the
            # shared future under the leader.)
            leader = self._inflight_results.get(primary_key)
            if leader is None:
                break
            try:
                answer = await asyncio.shield(leader)
            except asyncio.CancelledError:
                if leader.cancelled():
                    # The leader (not us) was cancelled mid-flight; go
                    # around and execute ourselves.
                    continue
                raise
            self._c_singleflight.inc()
            self._c_served.inc()
            trace.finish(cached=True, source="singleflight", width=answer.width)
            return ServiceResult(
                answer=answer,
                cached=True,
                client_id=client_id,
                cache_id=cache.cache_id,
            )

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Nobody may ever join before we finish; silence the "exception
        # never retrieved" warning for that case.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight_results[primary_key] = future
        try:
            answer = await self._execute_revalidated(
                cache, plan, client_id, cost, epsilon, trace
            )
        except BaseException as exc:
            if not future.done():
                # Our own cancellation must read as "leader gone", not as
                # an error verdict on the query, so followers re-execute.
                if isinstance(exc, asyncio.CancelledError):
                    future.cancel()
                else:
                    future.set_exception(exc)
            raise
        finally:
            self._inflight_results.pop(primary_key, None)
        if not future.done():
            future.set_result(answer)
        if answer.degraded:
            self.results.put(self._degraded_key(cache, plan, epsilon), answer)
        else:
            self.results.put(primary_key, answer)
        self._c_served.inc()
        trace.finish(cached=False, width=answer.width)
        return ServiceResult(
            answer=answer,
            cached=False,
            client_id=client_id,
            cache_id=cache.cache_id,
        )

    @staticmethod
    def _degraded_key(cache: DataCache, plan: AnyQueryPlan, epsilon):
        """The cache-scoped result key for a degraded answer.

        The ``"degraded"`` marker in the key extra keeps these entries
        disjoint from healthy ones even under the same cache scope, and
        the scope is always the serving *cache*, never the group.
        """
        return ResultCache.make_key(
            cache.cache_id,
            plan.table_names,
            plan.aggregate,
            plan.column_key,
            plan.predicate,
            plan.constraint.width,
            epsilon,
            extra=(plan.cache_extra, "degraded"),
        )

    # ------------------------------------------------------------------
    # Elastic membership: live detach / snapshot admit
    # ------------------------------------------------------------------
    async def detach_replica(self, group_id: str, cache_id: str) -> DataCache:
        """Drain and remove one replica from a serving group, live.

        The detach protocol, in order: (1) the replica stops receiving
        new work — routing skips it (its sticky clients re-stick to
        survivors immediately) and the scheduler stops picking it as a
        dispatch leader; (2) its in-flight queries *drain* — the service
        awaits the per-cache ledger reaching zero, so every admitted
        query finishes against the subscriptions it planned under;
        (3) the group tears the membership down
        (:meth:`~repro.replication.fanout.CacheGroup.detach_replica`:
        registry, fan-out, refresh-monitor trackers); (4) the replica's
        cache-scoped result entries are invalidated, so its degraded or
        private answers cannot outlive it.  Refuses to detach the last
        replica serving the group — a tier must not drain itself to
        nothing while clients hold its id.
        """
        group = self.system.group(group_id)
        cache = group.cache(cache_id)
        if len(group) <= 1:
            raise ServiceError(
                f"cache {cache_id!r} is the last replica of group "
                f"{group_id!r}; detaching it would leave nothing serving"
            )
        self._draining.add(cache_id)
        self.scheduler.exclude_leader(cache_id)
        try:
            while self._inflight_by_cache.get(cache_id, 0) > 0:
                await asyncio.sleep(self.scheduler.tick_interval or 0)
            table_names = list(cache.catalog.names())
            detached = self.system.detach_cache(cache_id)
        finally:
            self._draining.discard(cache_id)
            self.scheduler.readmit_leader(cache_id)
        for table_name in table_names:
            self.results.invalidate_table(table_name, {cache_id})
        return detached

    def admit_replica(
        self,
        group_id: str,
        cache_id: str,
        region: str | None = None,
        cost_model: BatchedCostModel | None = None,
        from_cache: str | None = None,
    ):
        """Add a late-joining replica to a serving group via snapshot.

        Synchronous on purpose: the snapshot transfer
        (:meth:`~repro.replication.fanout.CacheGroup.admit_replica`) runs
        between awaits, so no scheduler tick and no query observes a
        half-admitted member.  The joiner arrives carrying a sibling's
        bound functions and width-policy state — in fan-out lockstep from
        its first query — and becomes routable immediately.  Returns the
        transfer's :class:`~repro.replication.cache.BatchedRefreshReceipt`
        priced under the donor's cost model (falling back to the
        scheduler's).
        """
        _, receipt = self.system.admit_cache(
            cache_id,
            self.system.group(group_id),
            from_cache=from_cache,
            region=region,
            cost_model=cost_model,
            default_model=self.scheduler.cost_model,
        )
        return receipt

    # ------------------------------------------------------------------
    def _admit(
        self,
        client_id: str,
        plan: AnyQueryPlan,
        precision_floor: float | None,
        max_inflight: int | None,
    ) -> None:
        floor = precision_floor if precision_floor is not None else self.precision_floor
        if (
            floor > 0
            and isinstance(plan.constraint, AbsolutePrecision)
            and plan.constraint.width < floor
        ):
            self._c_rejected.inc()
            raise AdmissionError(
                f"client {client_id!r} may not request precision tighter than "
                f"WITHIN {floor:g} (asked for WITHIN {plan.constraint.width:g})"
            )
        allowance = (
            max_inflight if max_inflight is not None else self.max_inflight_per_client
        )
        if self._inflight_by_client.get(client_id, 0) >= allowance:
            self._c_rejected.inc()
            raise ServiceOverloadError(
                f"client {client_id!r} already has {allowance} queries in flight"
            )

    # ------------------------------------------------------------------
    def _on_refresh_dispatched(
        self, caches: list, table_name: str, tids: frozenset
    ) -> None:
        """Scheduler hook: evict cached answers a dispatched refresh staled.

        The refresh revealed fresh master values for ``table_name`` on
        every cache in ``caches`` (fan-out included), so answers computed
        from the pre-refresh values must not be served for their
        remaining TTL.  Scopes cover the tightened caches and their
        groups' shared tiers.
        """
        scopes = set()
        for cache in caches:
            scopes.add(cache.cache_id)
            if cache.group is not None:
                scopes.add(cache.group.group_id)
        self.results.invalidate_table(table_name, scopes)

    # ------------------------------------------------------------------
    async def _execute_revalidated(
        self,
        cache: DataCache,
        plan: AnyQueryPlan,
        client_id: str,
        cost: CostFunc | CostModel | None,
        epsilon: float | None,
        trace=None,
    ) -> BoundedAnswer:
        """Execute with the staleness-cap protocol: re-validate, retry once.

        :class:`~repro.errors.StaleRefreshError` from the first attempt
        means a cap-forced sync widened bounds under the suspended query
        past its constraint; the query re-plans from current bounds once
        (its refresh spend was not wasted — the refreshed tuples stay
        collapsed), then the error surfaces to the client as retryable.

        A *degraded* answer — from either attempt — is terminal: its
        sources are unreachable, so retrying cannot tighten it.  In
        particular a stale retry that runs into an open circuit degrades
        here instead of looping through the staleness protocol again.
        """
        try:
            answer = await self._execute(
                cache, plan, client_id, cost, epsilon, trace
            )
        except StaleRefreshError:
            self._c_stale_retry.inc()
            answer = await self._execute(
                cache, plan, client_id, cost, epsilon, trace
            )
        fraction = getattr(answer, "index_window_fraction", None)
        if fraction is not None:
            self._h_window_fraction.observe(fraction)
            if trace is not None:
                trace.step("classify", window_fraction=fraction)
        if answer.degraded:
            self._degraded_count += 1
            self._c_degraded.inc()
            if trace is not None:
                trace.step(
                    "degraded",
                    sources=list(answer.unreachable_sources),
                    width=answer.width,
                )
        return answer

    async def _execute(
        self,
        cache: DataCache,
        plan: AnyQueryPlan,
        client_id: str,
        cost: CostFunc | CostModel | None,
        epsilon: float | None,
        trace=None,
    ) -> BoundedAnswer:
        cache_id = cache.cache_id
        self._inflight_by_client[client_id] = (
            self._inflight_by_client.get(client_id, 0) + 1
        )
        self._inflight_by_cache[cache_id] = (
            self._inflight_by_cache.get(cache_id, 0) + 1
        )
        try:
            wait_started = time.perf_counter()
            async with self._semaphore:
                self._h_admission_wait.observe(
                    time.perf_counter() - wait_started
                )
                # Re-evaluating bound functions could widen a bound a
                # suspended query already planned against, so hold off
                # while any query on this cache awaits a refresh tick —
                # up to the staleness cap, past which we sync anyway and
                # re-validate the suspended queries afterwards.  Planning
                # and recomputation run synchronously between awaits and
                # are never exposed.
                if self._suspended_by_cache.get(cache_id, 0) == 0:
                    cache.sync_bounds()
                    self._sync_deferrals.pop(cache_id, None)
                else:
                    deferred = self._sync_deferrals.get(cache_id, 0) + 1
                    self._sync_deferrals[cache_id] = deferred
                    if (
                        self.max_sync_deferrals is not None
                        and deferred >= self.max_sync_deferrals
                    ):
                        cache.sync_bounds()
                        self._sync_deferrals[cache_id] = 0
                        self._sync_generation[cache_id] = (
                            self._sync_generation.get(cache_id, 0) + 1
                        )
                        self._c_forced_sync.inc()
                generation = self._sync_generation.get(cache_id, 0)
                suspended_across_sync = False
                executor = self.system.executor_for(cache_id, epsilon)
                steps = plan_steps(
                    plan,
                    executor,
                    cost=TrappSystem._resolve_cost(cost),
                    # The per-tuple metadata sweep is only worth paying
                    # when the scheduler will actually rebatch this
                    # cache's plans (an amortized model prices them).
                    rebatch_metadata=self.scheduler.wants_metadata_for(cache),
                )
                try:
                    request = next(steps)
                    while True:
                        if trace is not None:
                            trace.step(
                                "plan",
                                table=request.table.name,
                                tuples=len(request.plan.tids),
                            )
                        self._suspended_by_cache[cache_id] = (
                            self._suspended_by_cache.get(cache_id, 0) + 1
                        )
                        try:
                            effective = await self.scheduler.submit(
                                cache, request, trace=trace
                            )
                        finally:
                            self._suspended_by_cache[cache_id] -= 1
                            if self._suspended_by_cache[cache_id] <= 0:
                                del self._suspended_by_cache[cache_id]
                        if self._sync_generation.get(cache_id, 0) != generation:
                            suspended_across_sync = True
                        try:
                            request = steps.send(effective)
                        except ConstraintUnsatisfiableError:
                            if not suspended_across_sync:
                                raise
                            # Not an optimizer bug: a cap-forced sync
                            # widened unrefreshed tuples under this plan
                            # after it was chosen.  Abort retryably.
                            self._c_stale_abort.inc()
                            raise StaleRefreshError(
                                f"query for client {client_id!r} was "
                                "suspended across a forced bound sync "
                                f"(staleness cap {self.max_sync_deferrals}) "
                                "and its refreshed answer no longer meets "
                                f"WITHIN {plan.constraint.width:g}; retry"
                            ) from None
                except StopIteration as stop:
                    answer = stop.value
                if suspended_across_sync:
                    answer = self._revalidate(answer, plan, client_id)
                return answer
        finally:
            self._inflight_by_client[client_id] -= 1
            # Drop zeroed entries: a long-running server sees unboundedly
            # many distinct client ids (and routed cache sets change with
            # group membership).
            if self._inflight_by_client[client_id] <= 0:
                del self._inflight_by_client[client_id]
            self._inflight_by_cache[cache_id] -= 1
            if self._inflight_by_cache[cache_id] <= 0:
                del self._inflight_by_cache[cache_id]

    def _revalidate(
        self, answer: BoundedAnswer, plan: AnyQueryPlan, client_id: str
    ) -> BoundedAnswer:
        """The staleness-cap epilogue for a query suspended across a sync.

        The forced ``sync_bounds`` widened unrefreshed tuples under the
        suspended plan; its step-3 answer already reflects the widened
        bounds, so meeting the constraint proves the plan survived.
        """
        if answer.degraded:
            # Degraded answers are already past their constraint for
            # fault reasons; aborting them as stale would loop a retry
            # into the same dead sources.  They pass through as-is.
            return answer
        max_width = plan.constraint.width
        if answer.meets(max_width):
            self._c_revalidation.inc()
            return answer
        self._c_stale_abort.inc()
        raise StaleRefreshError(
            f"query for client {client_id!r} was suspended across a forced "
            f"bound sync (staleness cap {self.max_sync_deferrals}) and its "
            f"answer width {answer.width:g} no longer meets WITHIN "
            f"{max_width:g}; retry"
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving counters: queries, cache behavior, coalescing effect."""
        return {
            "queries_served": self.queries_served,
            "queries_rejected": self.queries_rejected,
            "singleflight_joins": self.singleflight_joins,
            "forced_syncs": self.forced_syncs,
            "revalidations": self.revalidations,
            "stale_retries": self.stale_retries,
            "stale_aborts": self.stale_aborts,
            "degraded_answers": self.degraded_answers,
            "result_cache": self.results.stats(),
            "scheduler": self.scheduler.stats.as_dict(),
            "faults": {
                **self.scheduler.fault_counts(),
                "breakers": self.scheduler.breaker_states(),
            },
        }
