"""The newline-delimited-JSON wire protocol of the query service.

One request or response per line, UTF-8 JSON, ``\\n``-terminated.  Requests
carry a client-chosen ``id`` echoed verbatim in the response, so a client
may pipeline many queries over one connection and match replies by id.

Request ops:

* ``{"id", "op": "query", "cache", "sql", "client"?}`` — execute TRAPP SQL;
* ``{"id", "op": "ping"}`` — liveness probe, echoes the server clock;
* ``{"id", "op": "stats"}`` — serving/coalescing counters;
* ``{"id", "op": "hello", "client"}`` — set the connection's client id;
* ``{"id", "op": "metrics", "format"?: "text"}`` — the telemetry registry
  snapshot (or its Prometheus text exposition);
* ``{"id", "op": "trace", "limit"?, "client"?}`` — recent query spans.

Responses are ``{"id", "ok": true, ...}`` or
``{"id", "ok": false, "error": {"kind", "message"}}`` where ``kind`` is
the server-side exception class name (``AdmissionError``, ...).
"""

from __future__ import annotations

import json

from repro.core.answer import BoundedAnswer
from repro.errors import WireProtocolError

__all__ = [
    "MAX_LINE_BYTES",
    "encode",
    "decode",
    "json_number",
    "json_safe",
    "answer_payload",
    "error_payload",
]

#: Upper bound on one protocol line; a longer line is a protocol error
#: (it would otherwise buffer without limit).
MAX_LINE_BYTES = 1 << 20


def encode(message: dict) -> bytes:
    """Serialize one protocol message to a terminated wire line.

    ``allow_nan=False`` keeps the output strict JSON — non-finite floats
    must be mapped to the string sentinels first (see
    :func:`json_number`), or encoding raises instead of emitting bare
    ``Infinity`` tokens no standards-compliant peer can parse.
    """
    return (
        json.dumps(message, separators=(",", ":"), allow_nan=False).encode("utf-8")
        + b"\n"
    )


def json_number(value: float) -> "float | str":
    """A float as strict JSON: finite values unchanged, non-finite ones
    as the strings ``"inf"`` / ``"-inf"`` / ``"nan"`` (round-trippable
    via ``float()``, which the bundled client applies anyway)."""
    if value != value or value in (float("inf"), float("-inf")):
        return str(value)
    return value


def json_safe(value):
    """A document with every non-finite float mapped via :func:`json_number`.

    The ``metrics``/``trace`` ops ship nested payloads built from live
    telemetry (span fields, histogram sums) where an infinite width or
    timestamp is legal; this walks them once so strict :func:`encode`
    never trips on a bare ``Infinity``.
    """
    if isinstance(value, float):
        return json_number(value)
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


def decode(line: bytes) -> dict:
    """Parse one wire line; raises :class:`WireProtocolError` if malformed."""
    if len(line) > MAX_LINE_BYTES:
        raise WireProtocolError(
            f"protocol line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise WireProtocolError(f"undecodable protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise WireProtocolError(
            f"protocol messages must be JSON objects, got {type(message).__name__}"
        )
    return message


def answer_payload(answer: BoundedAnswer, cached: bool) -> dict:
    """The JSON shape of one bounded answer.

    Endpoints can be infinite (e.g. MIN over an empty predicate match
    with no ``WITHIN``), so every float goes through :func:`json_number`.
    """
    payload = {
        "lo": json_number(answer.bound.lo),
        "hi": json_number(answer.bound.hi),
        "width": json_number(answer.width),
        "exact": answer.is_exact,
        "refreshed": sorted(answer.refreshed),
        "refresh_cost": json_number(answer.refresh_cost),
        "cached": cached,
    }
    if answer.degraded:
        payload["degraded"] = True
        payload["unreachable_sources"] = list(answer.unreachable_sources)
    return payload


def error_payload(exc: BaseException) -> dict:
    return {"kind": type(exc).__name__, "message": str(exc)}
