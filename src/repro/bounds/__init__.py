"""Time-varying bound functions and width-adaptation policies (App. A)."""

from repro.bounds.functions import (
    SHAPES,
    BoundFunction,
    BoundShape,
    ConstantShape,
    LinearShape,
    SqrtShape,
)
from repro.bounds.width import AdaptiveWidthController, FixedWidthPolicy, WidthPolicy

__all__ = [
    "BoundFunction",
    "BoundShape",
    "SqrtShape",
    "LinearShape",
    "ConstantShape",
    "SHAPES",
    "WidthPolicy",
    "FixedWidthPolicy",
    "AdaptiveWidthController",
]
