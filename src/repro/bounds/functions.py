"""Time-parameterized bound functions (paper §3.2 and Appendix A).

A refresh at time ``T_r`` installs a pair of functions
``[L_i(T), H_i(T)]`` with ``L_i(T_r) = H_i(T_r) = V_i(T_r)``: the bound has
zero width at refresh time and widens as time passes, always containing the
master value until the next refresh.

The paper derives the *shape* from a random-walk update model: after ``T``
steps the walk's standard deviation grows as ``√T``, and Chebyshev's
inequality bounds the excursion by a multiple of ``√T`` at any fixed
confidence — so the recommended shape is ``f(T) = √T``, giving

    ``[ V(T_r) − W·√(T − T_r) ,  V(T_r) + W·√(T − T_r) ]``

with a per-object width parameter ``W`` chosen at run time.  Constant and
linear shapes are provided for comparison (used by the ablation bench).

A bound function is encoded by just ``(V(T_r), W, T_r)`` — the two numbers
the paper notes a source must transmit per refresh, plus the refresh time
when message delay is not negligible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.core.bound import Bound
from repro.errors import BoundError

__all__ = [
    "BoundShape",
    "SqrtShape",
    "LinearShape",
    "ConstantShape",
    "BoundFunction",
    "SHAPES",
]


class BoundShape(Protocol):
    """The static shape ``f(T)``; monotonically non-decreasing, f(0) = 0."""

    name: str

    def __call__(self, elapsed: float) -> float:
        ...


@dataclass(frozen=True, slots=True)
class SqrtShape:
    """``f(T) = √T`` — the paper's recommended random-walk shape."""

    name: str = "sqrt"

    def __call__(self, elapsed: float) -> float:
        return math.sqrt(max(0.0, elapsed))


@dataclass(frozen=True, slots=True)
class LinearShape:
    """``f(T) = T`` — suits drift-dominated (trending) update patterns."""

    name: str = "linear"

    def __call__(self, elapsed: float) -> float:
        return max(0.0, elapsed)


@dataclass(frozen=True, slots=True)
class ConstantShape:
    """``f(T) = 1`` for T > 0 — a fixed-width bound (Quasi-copy style)."""

    name: str = "constant"

    def __call__(self, elapsed: float) -> float:
        return 1.0 if elapsed > 0 else 0.0


SHAPES: dict[str, BoundShape] = {
    "sqrt": SqrtShape(),
    "linear": LinearShape(),
    "constant": ConstantShape(),
}


@dataclass(frozen=True, slots=True)
class BoundFunction:
    """One installed bound: value-at-refresh, width parameter, shape, T_r.

    Immutable; a refresh replaces the whole object.  Evaluation at the
    current time produces the plain :class:`Bound` the rest of the system
    consumes (the paper's convention of writing ``[L_i, H_i]`` for
    ``[L_i(T_c), H_i(T_c)]``).
    """

    value_at_refresh: float
    width_parameter: float
    refreshed_at: float
    shape: BoundShape = SqrtShape()

    def __post_init__(self) -> None:
        if self.width_parameter < 0:
            raise BoundError(
                f"width parameter must be non-negative, got {self.width_parameter}"
            )

    def at(self, now: float) -> Bound:
        """Evaluate ``[L(now), H(now)]``.

        Evaluation before the refresh time is a protocol violation.
        """
        if now < self.refreshed_at - 1e-12:
            raise BoundError(
                f"bound evaluated at {now} before its refresh time "
                f"{self.refreshed_at}"
            )
        half_width = self.width_parameter * self.shape(now - self.refreshed_at)
        return Bound.around(self.value_at_refresh, half_width)

    def half_width_at(self, now: float) -> float:
        """``W · f(now − T_r)`` without building a Bound."""
        return self.width_parameter * self.shape(max(0.0, now - self.refreshed_at))

    def contains(self, value: float, now: float) -> bool:
        """True iff ``value`` lies inside the bound at time ``now``."""
        return self.at(now).contains(value)

    def encode(self) -> tuple[float, float, float]:
        """The wire encoding ``(V(T_r), W, T_r)`` (Appendix A)."""
        return (self.value_at_refresh, self.width_parameter, self.refreshed_at)

    @staticmethod
    def decode(
        payload: tuple[float, float, float], shape: BoundShape = SqrtShape()
    ) -> "BoundFunction":
        value, width, refreshed_at = payload
        return BoundFunction(value, width, refreshed_at, shape)
