"""Adaptive bound-width selection (paper Appendix A).

Choosing the width parameter ``W_i`` trades two refresh pressures against
each other: a *narrow* bound is precise but the master value escapes it
often (value-initiated refreshes), while a *wide* bound rarely needs
value-initiated refreshes but forces queries to refresh for precision
(query-initiated refreshes).

The paper sketches a feedback controller: start from some ``W``; widen it
multiplicatively on every value-initiated refresh (the bound proved too
narrow) and shrink it on every query-initiated refresh (the bound proved
too wide for consumers).  :class:`AdaptiveWidthController` implements that
strategy with configurable gains and clamps; :class:`FixedWidthPolicy`
is the static baseline the ablation bench compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import BoundError

__all__ = ["WidthPolicy", "FixedWidthPolicy", "AdaptiveWidthController"]


class WidthPolicy(Protocol):
    """Per-object policy producing the next width parameter at refresh time."""

    def next_width(self) -> float:
        """The width parameter to install with the next refresh."""
        ...

    def on_value_initiated(self) -> None:
        """Feedback: the master value escaped the bound (too narrow)."""
        ...

    def on_query_initiated(self) -> None:
        """Feedback: a query had to refresh for precision (too wide)."""
        ...


@dataclass(slots=True)
class FixedWidthPolicy:
    """A static width parameter (the Quasi-copies regime: set once by an
    administrator, never adapted)."""

    width: float

    def __post_init__(self) -> None:
        if self.width < 0:
            raise BoundError(f"width must be non-negative, got {self.width}")

    def next_width(self) -> float:
        return self.width

    def on_value_initiated(self) -> None:  # noqa: D102 - feedback ignored
        pass

    def on_query_initiated(self) -> None:  # noqa: D102 - feedback ignored
        pass


@dataclass(slots=True)
class AdaptiveWidthController:
    """Multiplicative-increase / multiplicative-decrease width adaptation.

    ``grow`` (> 1) multiplies the width after a value-initiated refresh;
    ``shrink`` (< 1) multiplies it after a query-initiated refresh.  The
    width is clamped to ``[min_width, max_width]`` so a burst of one signal
    cannot drive it to zero or infinity.  Counters are exposed so
    experiments can report the refresh mix.
    """

    initial_width: float = 1.0
    grow: float = 2.0
    shrink: float = 0.7
    min_width: float = 1e-6
    max_width: float = 1e6
    _width: float = field(init=False, default=0.0)
    value_initiated_count: int = field(init=False, default=0)
    query_initiated_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.initial_width <= 0:
            raise BoundError("initial width must be positive")
        if self.grow <= 1.0:
            raise BoundError(f"grow factor must exceed 1, got {self.grow}")
        if not 0.0 < self.shrink < 1.0:
            raise BoundError(f"shrink factor must lie in (0, 1), got {self.shrink}")
        if not 0 < self.min_width <= self.max_width:
            raise BoundError("width clamps must satisfy 0 < min <= max")
        self._width = min(max(self.initial_width, self.min_width), self.max_width)

    def next_width(self) -> float:
        return self._width

    def on_value_initiated(self) -> None:
        self.value_initiated_count += 1
        self._width = min(self._width * self.grow, self.max_width)

    def on_query_initiated(self) -> None:
        self.query_initiated_count += 1
        self._width = max(self._width * self.shrink, self.min_width)

    @property
    def total_refreshes(self) -> int:
        return self.value_initiated_count + self.query_initiated_count
