"""Command-line entry points: ``python -m repro serve`` / ``demo``.

``serve`` stands up a demo TRAPP deployment (a synthetic network-
monitoring source, one cache) behind the concurrent query service and
serves the NDJSON protocol until interrupted.  ``demo`` does the same on
an ephemeral port, drives a handful of concurrent closed-loop clients
through :class:`~repro.service.client.TrappClient`, prints what the
serving layer did (coalescing, result-cache hits), and exits 0 — it
doubles as the CI smoke test for the full client/server path.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys

from repro.extensions.batching import BatchedCostModel
from repro.replication.system import TrappSystem
from repro.service import QueryService, TrappClient, serve
from repro.workloads.netmon import build_master_table, generate_topology
from repro.workloads.service import closed_loop_scripts, run_closed_loop

__all__ = ["main"]

CACHE_ID = "monitor"


def _build_demo_system(n_links: int, seed: int, age: float) -> TrappSystem:
    """A one-source deployment over a synthetic monitored network.

    ``age`` advances the clock after subscription so cached bounds have
    widened — queries then actually exercise refreshes instead of reading
    zero-width just-subscribed bounds.
    """
    rng = random.Random(seed)
    system = TrappSystem()
    source = system.add_source("net-source")
    n_nodes = max(2, n_links // 3)
    source.add_table(build_master_table(generate_topology(n_nodes, n_links, rng), rng))
    cache = system.add_cache(CACHE_ID)
    cache.subscribe_table(source, "links")
    if age > 0:
        system.clock.advance(age)
        cache.sync_bounds()
    return system


def _build_service(system: TrappSystem, args: argparse.Namespace) -> QueryService:
    return QueryService(
        system,
        max_inflight=args.max_inflight,
        max_inflight_per_client=args.max_inflight_per_client,
        precision_floor=args.precision_floor,
        result_ttl=args.result_ttl,
        cost_model=BatchedCostModel(setup=args.setup_cost, marginal=args.marginal_cost),
        tick_interval=args.tick_interval,
    )


async def _serve_forever(args: argparse.Namespace) -> int:
    system = _build_demo_system(args.links, args.seed, args.age)
    service = _build_service(system, args)
    server = await serve(service, host=args.host, port=args.port)
    print(
        f"TRAPP query service on {server.host}:{server.port} "
        f"(cache {CACHE_ID!r}, {args.links} links; Ctrl-C to stop)",
        flush=True,
    )
    try:
        async with server:
            await asyncio.Event().wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    return 0


async def _demo(args: argparse.Namespace) -> int:
    system = _build_demo_system(args.links, args.seed, args.age)
    service = _build_service(system, args)
    server = await serve(service, host=args.host, port=0)
    print(f"demo server on {server.host}:{server.port}")

    scripts = closed_loop_scripts(
        system.cache(CACHE_ID).table("links"),
        "traffic",
        n_clients=args.clients,
        queries_per_client=args.queries,
        seed=args.seed,
    )
    clients = {
        script.client_id: await TrappClient.connect(
            server.host, server.port, client_id=script.client_id
        )
        for script in scripts
    }

    async def issue(client_id: str, sql: str):
        return await clients[client_id].query(CACHE_ID, sql)

    def report_error(client_id: str, sql: str, exc: Exception) -> None:
        print(f"  {client_id}: {sql!r} failed: {exc}", file=sys.stderr)

    try:
        result = await run_closed_loop(issue, scripts, on_error=report_error)
        stats = await next(iter(clients.values())).stats()
    finally:
        for client in clients.values():
            await client.close()
        await server.close()

    print(
        f"{args.clients} clients x {args.queries} queries: "
        f"{result.completed} completed, {result.errors} errors"
    )
    print(json.dumps(stats, indent=2))
    ok = result.errors == 0 and result.completed == args.clients * args.queries
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TRAPP/AG concurrent query service (Olston & Widom, VLDB 2000)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--host", default="127.0.0.1")
        sub.add_argument("--links", type=int, default=60, help="synthetic network size")
        sub.add_argument("--seed", type=int, default=11)
        sub.add_argument(
            "--age",
            type=float,
            default=100.0,
            help="simulated seconds of bound growth before serving",
        )
        sub.add_argument("--max-inflight", type=int, default=64)
        sub.add_argument("--max-inflight-per-client", type=int, default=8)
        sub.add_argument("--precision-floor", type=float, default=0.0)
        sub.add_argument("--result-ttl", type=float, default=1.0)
        sub.add_argument("--setup-cost", type=float, default=5.0)
        sub.add_argument("--marginal-cost", type=float, default=1.0)
        sub.add_argument("--tick-interval", type=float, default=0.0)

    serve_cmd = commands.add_parser("serve", help="run the query service until killed")
    add_common(serve_cmd)
    serve_cmd.add_argument("--port", type=int, default=7474)

    demo_cmd = commands.add_parser(
        "demo", help="serve on an ephemeral port, run concurrent clients, exit"
    )
    add_common(demo_cmd)
    demo_cmd.add_argument("--clients", type=int, default=3)
    demo_cmd.add_argument("--queries", type=int, default=5)

    args = parser.parse_args(argv)
    runner = _serve_forever if args.command == "serve" else _demo
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
