"""Vectorized batch entry points for classification and refinement.

These are array-at-a-time counterparts of :func:`repro.predicates.classify.
classify` and :func:`~repro.predicates.classify.restrict_bound`, operating
on a table's columnar mirror (:class:`~repro.storage.columnar.ColumnStore`)
instead of row objects.  Semantics follow the three-valued evaluation of
:func:`~repro.predicates.eval.evaluate_trilean` — equivalent to the
symbolic endpoint route (both implement the paper's Figure 8 translation,
including its one-directional ``Possible``-of-∧ / ``Certain``-of-∨
approximations) — so a batch classification partitions tuples exactly as
the row-at-a-time code does.

The evaluator represents a three-valued result as a pair of boolean masks
``(certain, possible)``: ``certain[i]`` ⟺ tuple *i* satisfies the
predicate under every realization of its bounds, ``possible[i]`` ⟺ under
at least one.  ``T+ = certain``, ``T? = possible ∧ ¬certain``,
``T− = ¬possible``.  All masks are aligned with ``Table.rows()`` (tuple-id)
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.bound import Bound
from repro.errors import PredicateError, PredicateTypeError
from repro.predicates.ast import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = [
    "ColumnarClassification",
    "classify_masks",
    "classification_from_masks",
    "classify_columnar",
    "restrict_endpoints",
]


# ----------------------------------------------------------------------
# Three-valued predicate evaluation over column arrays
# ----------------------------------------------------------------------
def classify_masks(store, predicate: Predicate) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``predicate`` over every tuple of a column store at once.

    Returns ``(certain, possible)`` boolean arrays in tuple-id order.
    """
    n = len(store)
    certain, possible = _eval(predicate, store)
    return _as_mask(certain, n), _as_mask(possible, n)


def _as_mask(value, n: int) -> np.ndarray:
    array = np.asarray(value, dtype=bool)
    if array.ndim == 0:
        return np.full(n, bool(array))
    return array


def _eval(predicate: Predicate, store):
    if isinstance(predicate, TruePredicate):
        return True, True
    if isinstance(predicate, Comparison):
        return _eval_comparison(predicate, store)
    if isinstance(predicate, Not):
        certain, possible = _eval(predicate.operand, store)
        return np.logical_not(possible), np.logical_not(certain)
    if isinstance(predicate, (And, Or)):
        cl, pl = _eval(predicate.left, store)
        cr, pr = _eval(predicate.right, store)
        if isinstance(predicate, And):
            return np.logical_and(cl, cr), np.logical_and(pl, pr)
        return np.logical_or(cl, cr), np.logical_or(pl, pr)
    raise PredicateError(f"unknown predicate node {predicate!r}")


def _term_arrays(term: Term, store):
    """A term's value over all tuples: ``("num", lo, hi)`` or ``("str", v)``.

    Components may be scalars (literals) or arrays (column references);
    NumPy broadcasting unifies the two downstream.
    """
    if isinstance(term, Literal):
        if isinstance(term.value, str):
            return ("str", term.value)
        v = float(term.value)
        return ("num", v, v)
    # ColumnRef: single-table rows never carry table-qualified keys, so the
    # unqualified name is authoritative (mirrors eval.resolve_column).
    if store.is_text(term.column):
        return ("str", store.text_values(term.column))
    lo, hi = store.endpoints(term.column)
    if term.scale != 1.0 or term.offset != 0.0:
        if term.scale >= 0:
            lo, hi = term.scale * lo + term.offset, term.scale * hi + term.offset
        else:
            lo, hi = term.scale * hi + term.offset, term.scale * lo + term.offset
    return ("num", lo, hi)


def _eval_comparison(comparison: Comparison, store):
    left = _term_arrays(comparison.left, store)
    right = _term_arrays(comparison.right, store)
    op = comparison.op
    if left[0] == "str" or right[0] == "str":
        if left[0] != right[0]:
            raise PredicateTypeError("cannot compare string with numeric value")
        if op == "=":
            result = left[1] == right[1]
        elif op == "!=":
            result = left[1] != right[1]
        else:
            raise PredicateTypeError(f"operator {op!r} is not defined for strings")
        return result, result

    _, l_lo, l_hi = left
    _, r_lo, r_hi = right
    if op == "<":
        return np.less(l_hi, r_lo), np.less(l_lo, r_hi)
    if op == "<=":
        return np.less_equal(l_hi, r_lo), np.less_equal(l_lo, r_hi)
    if op == ">":
        return np.less(r_hi, l_lo), np.less(r_lo, l_hi)
    if op == ">=":
        return np.less_equal(r_hi, l_lo), np.less_equal(r_lo, l_hi)
    certain_eq = np.logical_and(
        np.equal(l_lo, l_hi), np.logical_and(np.equal(r_lo, r_hi), np.equal(l_lo, r_lo))
    )
    possible_eq = np.logical_and(np.less_equal(l_lo, r_hi), np.less_equal(r_lo, l_hi))
    if op == "=":
        return certain_eq, possible_eq
    if op == "!=":
        return np.logical_not(possible_eq), np.logical_not(certain_eq)
    raise PredicateError(f"unknown comparison operator {op!r}")


# ----------------------------------------------------------------------
# Materializing row-level classifications from masks
# ----------------------------------------------------------------------
def classification_from_masks(
    rows: Sequence[Row], certain: np.ndarray, possible: np.ndarray
) -> Classification:
    """Build a row-level :class:`Classification` from aligned masks.

    ``rows`` must be in the same (tuple-id) order the masks were computed
    in — i.e. ``Table.rows()``.
    """
    result = Classification()
    for row, is_certain, is_possible in zip(rows, certain, possible):
        if is_certain:
            result.plus.append(row)
        elif is_possible:
            result.maybe.append(row)
        else:
            result.minus.append(row)
    return result


def classify_columnar(table, predicate: Predicate) -> Classification:
    """Drop-in columnar replacement for :func:`classify` on one table."""
    certain, possible = classify_masks(table.columns, predicate)
    return classification_from_masks(table.rows(), certain, possible)


# ----------------------------------------------------------------------
# Vectorized Appendix D refinement
# ----------------------------------------------------------------------
def restrict_endpoints(
    lo: np.ndarray, hi: np.ndarray, predicate: Predicate, column: str
) -> tuple[np.ndarray, np.ndarray]:
    """Shrink many bounds at once to their predicate-consistent parts.

    Array counterpart of :func:`~repro.predicates.classify.restrict_bound`:
    only conjunctions of simple ``column OP constant`` comparisons are
    exploited; any other structure leaves the endpoints unchanged (always
    sound).  Returns new arrays; the inputs are not modified.
    """
    if isinstance(predicate, And):
        lo, hi = restrict_endpoints(lo, hi, predicate.left, column)
        return restrict_endpoints(lo, hi, predicate.right, column)
    if isinstance(predicate, Comparison):
        cmp = predicate.normalized()
        left, right = cmp.left, cmp.right
        if (
            isinstance(left, ColumnRef)
            and left.column == column
            and left.scale == 1.0
            and left.offset == 0.0
            and isinstance(right, Literal)
            and not isinstance(right.value, str)
        ):
            k = float(right.value)
            if cmp.op in (">", ">="):
                return np.minimum(np.maximum(lo, k), hi), hi
            if cmp.op in ("<", "<="):
                return lo, np.maximum(np.minimum(hi, k), lo)
            if cmp.op == "=":
                inside = np.logical_and(lo <= k, k <= hi)
                return np.where(inside, k, lo), np.where(inside, k, hi)
        return lo, hi
    # Or / Not / TruePredicate: no sound single-interval restriction.
    return lo, hi


# ----------------------------------------------------------------------
# Columnar classification summary consumed by the aggregate fast paths
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ColumnarClassification:
    """The T+/T?/T− partition reduced to the aggregation column's arrays.

    ``plus_lo``/``plus_hi`` hold the T+ tuples' endpoints on the
    aggregation column, ``maybe_lo``/``maybe_hi`` the T? tuples' —
    post-refinement when the executor has Appendix D refinement enabled.
    For COUNT (no aggregation column) the arrays are None and only the
    partition sizes are meaningful.
    """

    n_plus: int
    n_maybe: int
    n_minus: int
    plus_lo: np.ndarray | None = None
    plus_hi: np.ndarray | None = None
    maybe_lo: np.ndarray | None = None
    maybe_hi: np.ndarray | None = None

    @staticmethod
    def from_masks(
        store,
        certain: np.ndarray,
        possible: np.ndarray,
        column: str | None,
        predicate: Predicate | None = None,
        refine: bool = False,
    ) -> "ColumnarClassification":
        """Slice the aggregation column by the T+/T? masks.

        With ``refine`` set (and a predicate), T? endpoints are narrowed
        via :func:`restrict_endpoints` before aggregation, mirroring the
        executor's row-path refinement.
        """
        maybe_mask = np.logical_and(possible, np.logical_not(certain))
        n_plus = int(np.count_nonzero(certain))
        n_maybe = int(np.count_nonzero(maybe_mask))
        n_minus = len(store) - n_plus - n_maybe
        if column is None:
            return ColumnarClassification(n_plus, n_maybe, n_minus)
        lo, hi = store.endpoints(column)
        maybe_lo, maybe_hi = lo[maybe_mask], hi[maybe_mask]
        if refine and predicate is not None:
            maybe_lo, maybe_hi = restrict_endpoints(
                maybe_lo, maybe_hi, predicate, column
            )
        return ColumnarClassification(
            n_plus,
            n_maybe,
            n_minus,
            plus_lo=lo[certain],
            plus_hi=hi[certain],
            maybe_lo=maybe_lo,
            maybe_hi=maybe_hi,
        )
