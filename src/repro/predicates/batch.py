"""Vectorized batch entry points for classification and refinement.

These are array-at-a-time counterparts of :func:`repro.predicates.classify.
classify` and :func:`~repro.predicates.classify.restrict_bound`, operating
on a table's columnar mirror (:class:`~repro.storage.columnar.ColumnStore`)
instead of row objects.  Semantics follow the three-valued evaluation of
:func:`~repro.predicates.eval.evaluate_trilean` — equivalent to the
symbolic endpoint route (both implement the paper's Figure 8 translation,
including its one-directional ``Possible``-of-∧ / ``Certain``-of-∨
approximations) — so a batch classification partitions tuples exactly as
the row-at-a-time code does.

The evaluator represents a three-valued result as a pair of boolean masks
``(certain, possible)``: ``certain[i]`` ⟺ tuple *i* satisfies the
predicate under every realization of its bounds, ``possible[i]`` ⟺ under
at least one.  ``T+ = certain``, ``T? = possible ∧ ¬certain``,
``T− = ¬possible``.  All masks are aligned with ``Table.rows()`` (tuple-id)
order.

Two routes produce those masks (ISSUE 10):

* the **dense evaluator** (:func:`_eval`) sweeps every tuple of every
  referenced column — the reference semantics, and the fallback for
  anything the indexes cannot express (column-vs-column comparisons,
  text columns, degenerate ``scale == 0`` terms);
* the **index-backed classifier** binary-searches the store's sorted
  endpoint views (:meth:`~repro.storage.columnar.ColumnStore.
  endpoint_order`) to turn each ``col op constant`` leaf into contiguous
  windows: tuples with ``hi < c`` or ``lo > c`` are decided wholesale
  and only the O(k) straddle window is materialized, as sorted
  tuple-position sets that And/Or/Not compose with exact set algebra
  (complement flags keep ``Not`` O(k)) before widening to dense masks
  once at the end.  :func:`classify_report` exposes the richer result —
  masks plus the sorted T+/T? position arrays and the fraction of
  (tuple, leaf) decisions that needed materializing — so the executor's
  harvest and answer assembly stay O(log n + k) too.

The two routes are bit-identical by construction: every window boundary
is found by binary-searching with the *same* float64 arithmetic the
dense path applies elementwise (``scale · key + offset REL c``), so no
transformed-constant rounding can disagree, and the composition algebra
is exact.  A Hypothesis property in
``tests/property/test_interval_index.py`` pins this across random
predicates, bounds, and write/refresh interleavings that dirty the
indexes mid-stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.bound import Bound
from repro.errors import PredicateError, PredicateTypeError
from repro.predicates.ast import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.predicates.classify import Classification
from repro.storage.row import Row

__all__ = [
    "ColumnarClassification",
    "ClassifyReport",
    "classify_masks",
    "classify_report",
    "classification_from_masks",
    "classify_columnar",
    "restrict_endpoints",
]


# ----------------------------------------------------------------------
# Three-valued predicate evaluation over column arrays
# ----------------------------------------------------------------------
def classify_masks(
    store, predicate: Predicate, *, use_index: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``predicate`` over every tuple of a column store at once.

    Returns ``(certain, possible)`` boolean arrays in tuple-id order.
    Routed through the endpoint-index windows when every leaf is
    index-eligible (bit-identical to the dense sweep); ``use_index=False``
    forces the dense evaluator — the ablation knob benchmarks and
    equivalence tests use.
    """
    report = classify_report(store, predicate, use_index=use_index)
    return report.certain, report.possible


@dataclass(slots=True)
class ClassifyReport:
    """One classification with its index-path by-products.

    ``certain``/``possible`` are the usual dense masks.  When the
    index-backed route ran (``used_index``), they are widened from the
    window sets **lazily** — consumers that work from the sorted
    positions alone (candidate harvesting, answer assembly) stay
    O(log n + k) and never pay the O(n) mask materialization.
    ``certain_positions``/``maybe_positions`` are the sorted
    tuple-order positions of T+ and T?, and ``window_fraction`` is the
    fraction of (tuple, leaf) decisions that had to be materialized
    from straddle windows (the rest were decided wholesale by two
    binary searches; low fractions are where the index pays).
    """

    used_index: bool = False
    window_fraction: float | None = None
    _n: int = 0
    _certain: np.ndarray | None = None
    _possible: np.ndarray | None = None
    _cset: "_PosSet | None" = None
    _pset: "_PosSet | None" = None
    _certain_positions: np.ndarray | None = None
    _maybe_positions: np.ndarray | None = None

    @property
    def certain(self) -> np.ndarray:
        if self._certain is None:
            self._certain = _ps_mask(self._cset, self._n)
        return self._certain

    @property
    def possible(self) -> np.ndarray:
        if self._possible is None:
            self._possible = _ps_mask(self._pset, self._n)
        return self._possible

    @property
    def certain_positions(self) -> np.ndarray | None:
        if self._certain_positions is None and self.used_index:
            if self._cset.complement:
                self._certain_positions = np.flatnonzero(self.certain)
            else:
                self._certain_positions = self._cset.positions
        return self._certain_positions

    @property
    def maybe_positions(self) -> np.ndarray | None:
        if self._maybe_positions is None and self.used_index:
            if not self._cset.complement and not self._pset.complement:
                # certain ⊆ possible (an invariant of the trilean
                # semantics), so T? is the possible positions with the
                # certain ones — each found by one binary search into
                # the sorted superset — masked out.
                keep = np.ones(len(self._pset.positions), dtype=bool)
                keep[
                    np.searchsorted(
                        self._pset.positions, self._cset.positions
                    )
                ] = False
                self._maybe_positions = self._pset.positions[keep]
            else:
                self._maybe_positions = np.flatnonzero(
                    np.logical_and(self.possible, np.logical_not(self.certain))
                )
        return self._maybe_positions

    @property
    def positions(self) -> "tuple[np.ndarray, np.ndarray] | None":
        """``(certain_positions, maybe_positions)`` when both are known."""
        if self.certain_positions is None or self.maybe_positions is None:
            return None
        return self.certain_positions, self.maybe_positions


def classify_report(
    store, predicate: Predicate, *, use_index: bool = True
) -> ClassifyReport:
    """Classify with full index-path detail (masks + sorted positions).

    Tries the endpoint-index windows first; any leaf the indexes cannot
    express exactly (column-vs-column, text, ``scale == 0``) falls the
    whole predicate back to the dense evaluator.  Either way the masks
    are identical; only the by-products differ.
    """
    n = len(store)
    if use_index and n:
        stats = _WindowStats()
        pair = _window_eval(predicate, store, stats)
        if pair is not None:
            cset, pset = pair
            fraction = (
                stats.touched / (n * stats.leaves) if stats.leaves else 0.0
            )
            report = ClassifyReport(
                used_index=True,
                window_fraction=fraction,
                _n=n,
                _cset=cset,
                _pset=pset,
            )
            if (
                isinstance(predicate, Comparison)
                and not cset.complement
                and not pset.complement
            ):
                report._maybe_positions = _leaf_maybe(
                    store, predicate, pset.positions
                )
            return report
    certain, possible = _eval(predicate, store)
    return ClassifyReport(
        _n=n, _certain=_as_mask(certain, n), _possible=_as_mask(possible, n)
    )


def _as_mask(value, n: int) -> np.ndarray:
    array = np.asarray(value, dtype=bool)
    if array.ndim == 0:
        return np.full(n, bool(array))
    return array


def _eval(predicate: Predicate, store):
    if isinstance(predicate, TruePredicate):
        return True, True
    if isinstance(predicate, Comparison):
        return _eval_comparison(predicate, store)
    if isinstance(predicate, Not):
        certain, possible = _eval(predicate.operand, store)
        return np.logical_not(possible), np.logical_not(certain)
    if isinstance(predicate, (And, Or)):
        cl, pl = _eval(predicate.left, store)
        cr, pr = _eval(predicate.right, store)
        if isinstance(predicate, And):
            return np.logical_and(cl, cr), np.logical_and(pl, pr)
        return np.logical_or(cl, cr), np.logical_or(pl, pr)
    raise PredicateError(f"unknown predicate node {predicate!r}")


def _term_arrays(term: Term, store):
    """A term's value over all tuples: ``("num", lo, hi)`` or ``("str", v)``.

    Components may be scalars (literals) or arrays (column references);
    NumPy broadcasting unifies the two downstream.
    """
    if isinstance(term, Literal):
        if isinstance(term.value, str):
            return ("str", term.value)
        v = float(term.value)
        return ("num", v, v)
    # ColumnRef: single-table rows never carry table-qualified keys, so the
    # unqualified name is authoritative (mirrors eval.resolve_column).
    if store.is_text(term.column):
        return ("str", store.text_values(term.column))
    lo, hi = store.endpoints(term.column)
    if term.scale != 1.0 or term.offset != 0.0:
        if term.scale >= 0:
            lo, hi = term.scale * lo + term.offset, term.scale * hi + term.offset
        else:
            lo, hi = term.scale * hi + term.offset, term.scale * lo + term.offset
    return ("num", lo, hi)


def _eval_comparison(comparison: Comparison, store):
    left = _term_arrays(comparison.left, store)
    right = _term_arrays(comparison.right, store)
    op = comparison.op
    if left[0] == "str" or right[0] == "str":
        if left[0] != right[0]:
            raise PredicateTypeError("cannot compare string with numeric value")
        if op == "=":
            result = left[1] == right[1]
        elif op == "!=":
            result = left[1] != right[1]
        else:
            raise PredicateTypeError(f"operator {op!r} is not defined for strings")
        return result, result

    _, l_lo, l_hi = left
    _, r_lo, r_hi = right
    if op == "<":
        return np.less(l_hi, r_lo), np.less(l_lo, r_hi)
    if op == "<=":
        return np.less_equal(l_hi, r_lo), np.less_equal(l_lo, r_hi)
    if op == ">":
        return np.less(r_hi, l_lo), np.less(r_lo, l_hi)
    if op == ">=":
        return np.less_equal(r_hi, l_lo), np.less_equal(r_lo, l_hi)
    certain_eq = np.logical_and(
        np.equal(l_lo, l_hi), np.logical_and(np.equal(r_lo, r_hi), np.equal(l_lo, r_lo))
    )
    possible_eq = np.logical_and(np.less_equal(l_lo, r_hi), np.less_equal(r_lo, l_hi))
    if op == "=":
        return certain_eq, possible_eq
    if op == "!=":
        return np.logical_not(possible_eq), np.logical_not(certain_eq)
    raise PredicateError(f"unknown comparison operator {op!r}")


# ----------------------------------------------------------------------
# Index-backed classification: searchsorted windows + position-set algebra
# ----------------------------------------------------------------------
_EMPTY_POSITIONS = np.empty(0, dtype=np.int64)


@dataclass(slots=True)
class _PosSet:
    """A set of tuple-order positions: sorted unique array + complement.

    The complement flag is what keeps ``Not`` (and windows covering most
    of the table) O(k): a nearly-full set stores the few positions it
    *excludes* instead of materializing n entries.
    """

    positions: np.ndarray
    complement: bool = False


@dataclass(slots=True)
class _WindowStats:
    """Materialization accounting for the index route (telemetry)."""

    touched: int = 0
    leaves: int = 0


def _ps_not(a: _PosSet) -> _PosSet:
    return _PosSet(a.positions, not a.complement)


def _ps_and(a: _PosSet, b: _PosSet) -> _PosSet:
    if a.complement:
        if b.complement:  # ¬A ∧ ¬B = ¬(A ∪ B)
            return _PosSet(np.union1d(a.positions, b.positions), True)
        a, b = b, a  # put the positive operand first
    if b.complement:  # A ∧ ¬B = A \ B
        return _PosSet(
            np.setdiff1d(a.positions, b.positions, assume_unique=True), False
        )
    return _PosSet(
        np.intersect1d(a.positions, b.positions, assume_unique=True), False
    )


def _ps_or(a: _PosSet, b: _PosSet) -> _PosSet:
    return _ps_not(_ps_and(_ps_not(a), _ps_not(b)))


def _ps_mask(s: _PosSet, n: int) -> np.ndarray:
    mask = np.full(n, s.complement)
    if len(s.positions):
        mask[s.positions] = not s.complement
    return mask


def _partition(n: int, flipped) -> int:
    """First index in ``range(n)`` where ``flipped`` holds.

    ``flipped`` must be monotone over the sorted keys (False… then
    True…); two endpoint lookups per leaf replace the dense sweep.
    """
    lo, hi = 0, n
    while lo < hi:
        mid = (lo + hi) // 2
        if flipped(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def _window_bounds(
    order, scale: float, offset: float, rel: str, c: float
) -> tuple[int, int]:
    """The ``[a, b)`` run of sorted-order entries with ``scale·key+offset REL c``.

    The probe arithmetic is scalar float64 — bit-identical to the dense
    path's elementwise ``scale * arr + offset`` (both are two correctly
    rounded IEEE-754 operations), so the boundary can never disagree
    with a full sweep.  ``scale`` must be nonzero: the transformed keys
    are then strictly monotone with the raw keys (increasing for
    positive scale, decreasing for negative), which is what makes the
    truth region contiguous.
    """
    keys = order.keys
    n = len(keys)
    if scale == 1.0 and offset == 0.0 and not math.isnan(c):
        # Untransformed term: the window boundary is the raw constant's
        # insertion point, and np.searchsorted's C comparisons are the
        # very IEEE-754 ``<`` the dense path applies elementwise — no
        # probe arithmetic at all.  (A NaN constant would sort above
        # +inf and flip the window open; the probe loop's all-False
        # comparisons handle that degenerate case instead.)
        if rel == "==":
            return (
                int(np.searchsorted(keys, c, side="left")),
                int(np.searchsorted(keys, c, side="right")),
            )
        if rel == "<":
            return 0, int(np.searchsorted(keys, c, side="left"))
        if rel == "<=":
            return 0, int(np.searchsorted(keys, c, side="right"))
        if rel == ">":
            return int(np.searchsorted(keys, c, side="right")), n
        return int(np.searchsorted(keys, c, side="left")), n

    def value(i: int) -> float:
        return scale * float(keys[i]) + offset

    increasing = scale > 0.0
    if rel == "==":
        if increasing:
            a = _partition(n, lambda i: value(i) >= c)
            b = _partition(n, lambda i: value(i) > c)
        else:
            a = _partition(n, lambda i: value(i) <= c)
            b = _partition(n, lambda i: value(i) < c)
        return a, b
    if rel == "<":
        cond = lambda i: value(i) < c  # noqa: E731
        prefix = increasing
    elif rel == "<=":
        cond = lambda i: value(i) <= c  # noqa: E731
        prefix = increasing
    elif rel == ">":
        cond = lambda i: value(i) > c  # noqa: E731
        prefix = not increasing
    else:  # ">="
        cond = lambda i: value(i) >= c  # noqa: E731
        prefix = not increasing
    if prefix:  # truth region True… then False…
        return 0, _partition(n, lambda i: not cond(i))
    return _partition(n, cond), n


def _window_set(store, column, side, scale, offset, rel, c, stats) -> _PosSet:
    """One elementary condition as a position set, via two searchsorteds."""
    order = store.endpoint_order(column, side)
    n = len(order.keys)
    a, b = _window_bounds(order, scale, offset, rel, c)
    k = b - a
    if 2 * k > n:
        # The window covers most of the table: materialize its (small)
        # complement — the two outer runs of the same ordering.
        stats.touched += n - k
        outer = np.concatenate([order.positions[:a], order.positions[b:]])
        return _PosSet(np.sort(outer), True)
    stats.touched += k
    return _PosSet(np.sort(order.positions[a:b]), False)


def _window_pair_and(store, column, scale, offset, spec1, spec2, c, stats) -> _PosSet:
    """Intersect two elementary conditions without an O(n) set product.

    Both windows are located by binary search; the *smaller* one is
    gathered and filtered elementwise by the other condition on the raw
    arrays (same float64 arithmetic as the dense path).  Cost is
    O(min(|w1|, |w2|)) — the straddle set of an equality predicate
    against a far-off constant stays O(k).
    """
    side1, rel1 = spec1
    side2, rel2 = spec2
    order1 = store.endpoint_order(column, side1)
    order2 = store.endpoint_order(column, side2)
    a1, b1 = _window_bounds(order1, scale, offset, rel1, c)
    a2, b2 = _window_bounds(order2, scale, offset, rel2, c)
    if b2 - a2 < b1 - a1:
        order1, a1, b1 = order2, a2, b2
        side2, rel2 = side1, rel1
    positions = order1.positions[a1:b1]
    stats.touched += len(positions)
    if not len(positions):
        return _PosSet(_EMPTY_POSITIONS, False)
    lo_arr, hi_arr = store.endpoints(column)
    arr = lo_arr if side2 == "lo" else hi_arr
    values = scale * arr[positions] + offset
    if rel2 == "==":
        keep = np.equal(values, c)
    elif rel2 == "<=":
        keep = np.less_equal(values, c)
    else:  # ">="
        keep = np.greater_equal(values, c)
    return _PosSet(np.sort(positions[keep]), False)


def _comparison_windows(comparison: Comparison, store, stats):
    """A ``col op constant`` leaf as (certain, possible) position sets.

    Returns ``None`` when the leaf is not index-eligible —
    column-vs-column or literal-vs-literal comparisons, text operands,
    and ``scale == 0`` terms (whose dense semantics fold infinite
    endpoints through ``0 · ∞ = nan``) all defer to the dense evaluator.
    """
    cmp = comparison.normalized()
    left, right = cmp.left, cmp.right
    if not isinstance(left, ColumnRef) or not isinstance(right, Literal):
        return None
    if isinstance(right.value, str) or store.is_text(left.column):
        return None
    scale, offset = float(left.scale), float(left.offset)
    if scale == 0.0:
        return None
    column = left.column
    c = float(right.value)
    stats.leaves += 1
    # The term's own endpoints come from the raw arrays, swapped for a
    # negative scale exactly as the dense `_term_arrays` does.
    lo_side = "lo" if scale > 0 else "hi"  # where the term's low end lives
    hi_side = "hi" if scale > 0 else "lo"
    op = cmp.op
    if op == "<":
        certain = _window_set(store, column, hi_side, scale, offset, "<", c, stats)
        possible = _window_set(store, column, lo_side, scale, offset, "<", c, stats)
        return certain, possible
    if op == "<=":
        certain = _window_set(store, column, hi_side, scale, offset, "<=", c, stats)
        possible = _window_set(store, column, lo_side, scale, offset, "<=", c, stats)
        return certain, possible
    if op == ">":
        certain = _window_set(store, column, lo_side, scale, offset, ">", c, stats)
        possible = _window_set(store, column, hi_side, scale, offset, ">", c, stats)
        return certain, possible
    if op == ">=":
        certain = _window_set(store, column, lo_side, scale, offset, ">=", c, stats)
        possible = _window_set(store, column, hi_side, scale, offset, ">=", c, stats)
        return certain, possible
    if op in ("=", "!="):
        # certain(=) ⟺ both endpoints equal c; possible(=) ⟺ the bound
        # straddles c.  Each is the intersection of two windows.
        certain_eq = _window_pair_and(
            store, column, scale, offset, (lo_side, "=="), (hi_side, "=="), c, stats
        )
        possible_eq = _window_pair_and(
            store, column, scale, offset, (lo_side, "<="), (hi_side, ">="), c, stats
        )
        if op == "=":
            return certain_eq, possible_eq
        return _ps_not(possible_eq), _ps_not(certain_eq)
    return None  # unknown operator: the dense path raises the canonical error


def _leaf_maybe(store, comparison: Comparison, pset_positions) -> np.ndarray | None:
    """O(k) T? positions for a single inequality leaf, or ``None``.

    ``T? = possible ∧ ¬certain``; for one ``col op constant`` leaf the
    certain condition tests a single endpoint, so filtering the possible
    window's gathered endpoint values — the *same* ``scale·x + offset``
    float64 arithmetic and comparison the dense sweep applies — beats
    the generic sorted-set subtraction, whose per-probe binary searches
    dominate the report's position derivation.  The result is computed
    eagerly from classify-time arrays so the report stays a pure
    snapshot even if the store mutates afterwards.
    """
    cmp = comparison.normalized()
    left, right = cmp.left, cmp.right
    op = cmp.op
    if op not in ("<", "<=", ">", ">="):
        return None
    if not isinstance(left, ColumnRef) or not isinstance(right, Literal):
        return None
    scale, offset = float(left.scale), float(left.offset)
    if scale == 0.0 or isinstance(right.value, str):
        return None
    c = float(right.value)
    # The certain condition's endpoint, mirroring _comparison_windows:
    # `col < c` is certain when the term's *high* end clears c, `col > c`
    # when its *low* end does; a negative scale swaps which raw array
    # holds that end (exactly as the dense _term_arrays swap).
    if op in ("<", "<="):
        side = "hi" if scale > 0 else "lo"
    else:
        side = "lo" if scale > 0 else "hi"
    lo_arr, hi_arr = store.endpoints(left.column)
    values = (lo_arr if side == "lo" else hi_arr)[pset_positions]
    if scale != 1.0 or offset != 0.0:
        values = scale * values + offset
    if op == "<":
        certain = np.less(values, c)
    elif op == "<=":
        certain = np.less_equal(values, c)
    elif op == ">":
        certain = np.less(c, values)
    else:
        certain = np.less_equal(c, values)
    return pset_positions[np.logical_not(certain)]


def _window_eval(predicate: Predicate, store, stats):
    """Recursive index-backed evaluation to (certain, possible) sets.

    ``None`` propagates up from any ineligible leaf: partial routing
    would still sweep the ineligible column, so the whole predicate
    falls back to the dense evaluator instead.
    """
    if isinstance(predicate, TruePredicate):
        return _PosSet(_EMPTY_POSITIONS, True), _PosSet(_EMPTY_POSITIONS, True)
    if isinstance(predicate, Comparison):
        return _comparison_windows(predicate, store, stats)
    if isinstance(predicate, Not):
        pair = _window_eval(predicate.operand, store, stats)
        if pair is None:
            return None
        certain, possible = pair
        return _ps_not(possible), _ps_not(certain)
    if isinstance(predicate, (And, Or)):
        left = _window_eval(predicate.left, store, stats)
        if left is None:
            return None
        right = _window_eval(predicate.right, store, stats)
        if right is None:
            return None
        cl, pl = left
        cr, pr = right
        if isinstance(predicate, And):
            return _ps_and(cl, cr), _ps_and(pl, pr)
        return _ps_or(cl, cr), _ps_or(pl, pr)
    return None  # unknown node: the dense path raises the canonical error


# ----------------------------------------------------------------------
# Materializing row-level classifications from masks
# ----------------------------------------------------------------------
def classification_from_masks(
    rows: Sequence[Row], certain: np.ndarray, possible: np.ndarray
) -> Classification:
    """Build a row-level :class:`Classification` from aligned masks.

    ``rows`` must be in the same (tuple-id) order the masks were computed
    in — i.e. ``Table.rows()``.
    """
    result = Classification()
    for row, is_certain, is_possible in zip(rows, certain, possible):
        if is_certain:
            result.plus.append(row)
        elif is_possible:
            result.maybe.append(row)
        else:
            result.minus.append(row)
    return result


def classify_columnar(table, predicate: Predicate) -> Classification:
    """Drop-in columnar replacement for :func:`classify` on one table."""
    certain, possible = classify_masks(table.columns, predicate)
    return classification_from_masks(table.rows(), certain, possible)


# ----------------------------------------------------------------------
# Vectorized Appendix D refinement
# ----------------------------------------------------------------------
def restrict_endpoints(
    lo: np.ndarray, hi: np.ndarray, predicate: Predicate, column: str
) -> tuple[np.ndarray, np.ndarray]:
    """Shrink many bounds at once to their predicate-consistent parts.

    Array counterpart of :func:`~repro.predicates.classify.restrict_bound`:
    only conjunctions of simple ``column OP constant`` comparisons are
    exploited; any other structure leaves the endpoints unchanged (always
    sound).  Returns new arrays; the inputs are not modified.
    """
    if isinstance(predicate, And):
        lo, hi = restrict_endpoints(lo, hi, predicate.left, column)
        return restrict_endpoints(lo, hi, predicate.right, column)
    if isinstance(predicate, Comparison):
        cmp = predicate.normalized()
        left, right = cmp.left, cmp.right
        if (
            isinstance(left, ColumnRef)
            and left.column == column
            and left.scale == 1.0
            and left.offset == 0.0
            and isinstance(right, Literal)
            and not isinstance(right.value, str)
        ):
            k = float(right.value)
            if cmp.op in (">", ">="):
                return np.minimum(np.maximum(lo, k), hi), hi
            if cmp.op in ("<", "<="):
                return lo, np.maximum(np.minimum(hi, k), lo)
            if cmp.op == "=":
                inside = np.logical_and(lo <= k, k <= hi)
                return np.where(inside, k, lo), np.where(inside, k, hi)
        return lo, hi
    # Or / Not / TruePredicate: no sound single-interval restriction.
    return lo, hi


# ----------------------------------------------------------------------
# Columnar classification summary consumed by the aggregate fast paths
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ColumnarClassification:
    """The T+/T?/T− partition reduced to the aggregation column's arrays.

    ``plus_lo``/``plus_hi`` hold the T+ tuples' endpoints on the
    aggregation column, ``maybe_lo``/``maybe_hi`` the T? tuples' —
    post-refinement when the executor has Appendix D refinement enabled.
    For COUNT (no aggregation column) the arrays are None and only the
    partition sizes are meaningful.
    """

    n_plus: int
    n_maybe: int
    n_minus: int
    plus_lo: np.ndarray | None = None
    plus_hi: np.ndarray | None = None
    maybe_lo: np.ndarray | None = None
    maybe_hi: np.ndarray | None = None

    @staticmethod
    def from_masks(
        store,
        certain: np.ndarray,
        possible: np.ndarray,
        column: str | None,
        predicate: Predicate | None = None,
        refine: bool = False,
        positions: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> "ColumnarClassification":
        """Slice the aggregation column by the T+/T? masks.

        With ``refine`` set (and a predicate), T? endpoints are narrowed
        via :func:`restrict_endpoints` before aggregation, mirroring the
        executor's row-path refinement.  When the index-backed classifier
        supplied sorted ``(certain_positions, maybe_positions)``, the
        gathers run over those O(k) arrays instead of n-row boolean
        masks; both routes produce identical arrays.
        """
        if positions is not None:
            plus_at, maybe_at = positions
        else:
            maybe_mask = np.logical_and(possible, np.logical_not(certain))
            plus_at = np.flatnonzero(certain)
            maybe_at = np.flatnonzero(maybe_mask)
        n_plus = len(plus_at)
        n_maybe = len(maybe_at)
        n_minus = len(store) - n_plus - n_maybe
        if column is None:
            return ColumnarClassification(n_plus, n_maybe, n_minus)
        lo, hi = store.endpoints(column)
        maybe_lo, maybe_hi = lo[maybe_at], hi[maybe_at]
        if refine and predicate is not None:
            maybe_lo, maybe_hi = restrict_endpoints(
                maybe_lo, maybe_hi, predicate, column
            )
        return ColumnarClassification(
            n_plus,
            n_maybe,
            n_minus,
            plus_lo=lo[plus_at],
            plus_hi=hi[plus_at],
            maybe_lo=maybe_lo,
            maybe_hi=maybe_hi,
        )
