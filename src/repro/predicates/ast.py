"""Predicate expression AST.

Predicates in TRAPP/AG queries are arbitrary boolean combinations of binary
comparisons between columns and constants (paper Appendix D).  This module
defines the expression tree; evaluation lives in
:mod:`repro.predicates.eval` and the Possible/Certain transforms in
:mod:`repro.predicates.transforms`.

Comparison operands are *terms*: either a column reference or a literal
constant.  Terms may additionally carry a linear transform
(``scale * x + offset``) so simple arithmetic like ``2 * latency + 1 < 20``
parses into a single comparison; this keeps the Appendix D endpoint
translation exact (linear maps preserve interval endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.core.bound import Bound
from repro.errors import PredicateError

__all__ = [
    "Term",
    "ColumnRef",
    "Literal",
    "Comparison",
    "CompOp",
    "Not",
    "And",
    "Or",
    "TruePredicate",
    "Predicate",
    "columns_of",
]


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A reference to a column, optionally qualified and linearly mapped.

    The value of the term is ``scale * row[column] + offset``.
    """

    column: str
    table: str | None = None
    scale: float = 1.0
    offset: float = 0.0

    def as_bound(self, value: Bound) -> Bound:
        """Apply the linear transform to an interval value."""
        return value.scale(self.scale).shift(self.offset)

    def as_number(self, value: float) -> float:
        return self.scale * value + self.offset

    @property
    def qualified_name(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column

    def __str__(self) -> str:
        base = self.qualified_name
        if self.scale != 1.0:
            base = f"{self.scale:g}*{base}"
        if self.offset:
            sign = "+" if self.offset > 0 else "-"
            base = f"{base} {sign} {abs(self.offset):g}"
        return base


@dataclass(frozen=True, slots=True)
class Literal:
    """A constant term (number or string)."""

    value: float | str

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return f"{self.value:g}"


Term = Union[ColumnRef, Literal]


class CompOp:
    """Comparison operator symbols, with helpers for flip/negate."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="

    ALL = (LT, LE, GT, GE, EQ, NE)

    _FLIP = {LT: GT, LE: GE, GT: LT, GE: LE, EQ: EQ, NE: NE}
    _NEGATE = {LT: GE, LE: GT, GT: LE, GE: LT, EQ: NE, NE: EQ}

    @classmethod
    def flip(cls, op: str) -> str:
        """The operator with operands swapped (``a < b`` ≡ ``b > a``)."""
        return cls._FLIP[op]

    @classmethod
    def negate(cls, op: str) -> str:
        """The logical complement (``not (a < b)`` ≡ ``a >= b``)."""
        return cls._NEGATE[op]


@dataclass(frozen=True, slots=True)
class Comparison:
    """A binary comparison ``left OP right``."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in CompOp.ALL:
            raise PredicateError(f"unknown comparison operator {self.op!r}")

    def normalized(self) -> "Comparison":
        """Rewrite so any column reference is on the left when possible."""
        if isinstance(self.left, Literal) and isinstance(self.right, ColumnRef):
            return Comparison(self.right, CompOp.flip(self.op), self.left)
        return self

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class Not:
    """Logical negation."""

    operand: "Predicate"

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True, slots=True)
class And:
    """Logical conjunction (binary; parser folds chains left-to-right)."""

    left: "Predicate"
    right: "Predicate"

    def __str__(self) -> str:
        return f"({self.left}) AND ({self.right})"


@dataclass(frozen=True, slots=True)
class Or:
    """Logical disjunction."""

    left: "Predicate"
    right: "Predicate"

    def __str__(self) -> str:
        return f"({self.left}) OR ({self.right})"


@dataclass(frozen=True, slots=True)
class TruePredicate:
    """The always-true predicate (a query with no WHERE clause)."""

    def __str__(self) -> str:
        return "TRUE"


Predicate = Union[Comparison, Not, And, Or, TruePredicate]


def columns_of(predicate: Predicate) -> set[str]:
    """The set of (unqualified) column names mentioned by a predicate."""

    def walk(node: Predicate) -> Iterator[str]:
        if isinstance(node, Comparison):
            for term in (node.left, node.right):
                if isinstance(term, ColumnRef):
                    yield term.column
        elif isinstance(node, Not):
            yield from walk(node.operand)
        elif isinstance(node, (And, Or)):
            yield from walk(node.left)
            yield from walk(node.right)
        elif isinstance(node, TruePredicate):
            return
        else:  # pragma: no cover - defensive
            raise PredicateError(f"unknown predicate node {node!r}")

    return set(walk(predicate))
