"""Predicate language: AST, parsing, evaluation, Possible/Certain, T± sets."""

from repro.predicates.ast import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
    columns_of,
)
from repro.predicates.classify import (
    Classification,
    classify,
    classify_trilean,
    restrict_bound,
)
from repro.predicates.eval import evaluate_exact, evaluate_trilean
from repro.predicates.parser import parse_predicate
from repro.predicates.transforms import certain, endpoint_sql, possible

__all__ = [
    "And",
    "ColumnRef",
    "Comparison",
    "Literal",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "columns_of",
    "Classification",
    "classify",
    "classify_trilean",
    "restrict_bound",
    "evaluate_exact",
    "evaluate_trilean",
    "parse_predicate",
    "possible",
    "certain",
    "endpoint_sql",
]
