"""Predicate language: AST, parsing, evaluation, Possible/Certain, T± sets.

Row-at-a-time classification lives in :mod:`repro.predicates.classify`;
:mod:`repro.predicates.batch` provides the vectorized counterparts
(``classify_masks``, ``restrict_endpoints``) over a table's columnar
mirror.
"""

from repro.predicates.ast import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
    columns_of,
)
from repro.predicates.classify import (
    Classification,
    classify,
    classify_trilean,
    restrict_bound,
)
from repro.predicates.eval import evaluate_exact, evaluate_trilean
from repro.predicates.parser import parse_predicate
from repro.predicates.transforms import certain, endpoint_sql, possible

try:
    from repro.predicates.batch import (
        ColumnarClassification,
        classification_from_masks,
        classify_columnar,
        classify_masks,
        restrict_endpoints,
    )

    __all_batch__ = [
        "ColumnarClassification",
        "classification_from_masks",
        "classify_columnar",
        "classify_masks",
        "restrict_endpoints",
    ]
except ImportError:  # pragma: no cover - numpy-less hosts
    __all_batch__ = []

__all__ = __all_batch__ + [
    "And",
    "ColumnRef",
    "Comparison",
    "Literal",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "columns_of",
    "Classification",
    "classify",
    "classify_trilean",
    "restrict_bound",
    "evaluate_exact",
    "evaluate_trilean",
    "parse_predicate",
    "possible",
    "certain",
    "endpoint_sql",
]
