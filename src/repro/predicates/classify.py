"""Partitioning tuples into T+, T?, T− under a selection predicate (§6).

Given a predicate ``P`` over a cached table whose columns may hold bounded
values, every tuple falls into exactly one of three disjoint sets:

* ``T+`` — guaranteed to satisfy ``P`` for every realization of its bounds
  (``Certain(P)`` holds);
* ``T−`` — cannot possibly satisfy ``P`` (``Possible(P)`` fails);
* ``T?`` — everything else: some realizations satisfy ``P``, others do not.

Two equivalent implementations are provided and cross-checked in tests:

* :func:`classify` — evaluates the symbolic endpoint predicates produced by
  :mod:`repro.predicates.transforms` (the paper's Appendix D route, which a
  host DBMS could optimize with endpoint indexes);
* :func:`classify_trilean` — evaluates the predicate directly in
  three-valued logic over the row's interval values.

Both also expose the paper's §D refinement: when the selection predicate
constrains the *aggregation column itself*, the bounds of ``T?`` tuples can
be shrunk to the predicate-consistent sub-interval before aggregation.

Array-at-a-time counterparts of both :func:`classify` and
:func:`restrict_bound` live in :mod:`repro.predicates.batch`; they sweep a
table's columnar mirror instead of looping over rows and are what the
executor's fast paths use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.bound import Bound, Trilean
from repro.predicates.ast import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.predicates.eval import evaluate_trilean
from repro.predicates.transforms import certain, evaluate_endpoint, possible
from repro.storage.row import Row

__all__ = ["Classification", "classify", "classify_trilean", "restrict_bound"]


@dataclass(slots=True)
class Classification:
    """The T+/T?/T− partition of a set of rows under one predicate."""

    plus: list[Row] = field(default_factory=list)
    maybe: list[Row] = field(default_factory=list)
    minus: list[Row] = field(default_factory=list)

    @property
    def plus_or_maybe(self) -> list[Row]:
        """``T+ ∪ T?`` — every tuple that might contribute to the answer."""
        return self.plus + self.maybe

    def counts(self) -> tuple[int, int, int]:
        """``(|T+|, |T?|, |T−|)``."""
        return (len(self.plus), len(self.maybe), len(self.minus))

    def label_of(self, tid: int) -> str:
        """Human-readable label (``T+``, ``T?``, ``T-``) for one tuple id."""
        for rows, label in ((self.plus, "T+"), (self.maybe, "T?"), (self.minus, "T-")):
            if any(r.tid == tid for r in rows):
                return label
        raise KeyError(f"tuple #{tid} was not classified")

    def __repr__(self) -> str:
        p, q, m = self.counts()
        return f"Classification(T+={p}, T?={q}, T-={m})"


def classify(rows: Iterable[Row], predicate: Predicate) -> Classification:
    """Partition ``rows`` via the symbolic Possible/Certain transforms."""
    certain_p = certain(predicate)
    possible_p = possible(predicate)
    result = Classification()
    for row in rows:
        if evaluate_endpoint(certain_p, row):
            result.plus.append(row)
        elif evaluate_endpoint(possible_p, row):
            result.maybe.append(row)
        else:
            result.minus.append(row)
    return result


def classify_trilean(rows: Iterable[Row], predicate: Predicate) -> Classification:
    """Partition ``rows`` via direct three-valued evaluation."""
    result = Classification()
    for row in rows:
        verdict = evaluate_trilean(predicate, row)
        if verdict is Trilean.TRUE:
            result.plus.append(row)
        elif verdict is Trilean.MAYBE:
            result.maybe.append(row)
        else:
            result.minus.append(row)
    return result


def restrict_bound(bound: Bound, predicate: Predicate, column: str) -> Bound:
    """Shrink ``bound`` to the sub-interval consistent with ``predicate``.

    Implements the Appendix D refinement: when the selection predicate
    always restricts the aggregation column (e.g. aggregating ``latency``
    under ``latency > 10``), a ``T?`` tuple's bound can be narrowed to the
    part that could actually contribute — ``[max(lo, 10), hi]`` in the
    example — before computing the bounded answer or choosing refresh
    tuples.  Only conjunctions of simple ``column OP constant`` comparisons
    are exploited; any other structure leaves the bound unchanged (which is
    always sound).
    """
    return _restrict(bound, predicate, column)


def _restrict(bound: Bound, predicate: Predicate, column: str) -> Bound:
    if isinstance(predicate, And):
        return _restrict(_restrict(bound, predicate.left, column), predicate.right, column)
    if isinstance(predicate, Comparison):
        cmp = predicate.normalized()
        left, right = cmp.left, cmp.right
        if (
            isinstance(left, ColumnRef)
            and left.column == column
            and left.scale == 1.0
            and left.offset == 0.0
            and isinstance(right, Literal)
            and not isinstance(right.value, str)
        ):
            k = float(right.value)
            if cmp.op in (">", ">="):
                lo = min(max(bound.lo, k), bound.hi)
                return Bound(lo, bound.hi)
            if cmp.op in ("<", "<="):
                hi = max(min(bound.hi, k), bound.lo)
                return Bound(bound.lo, hi)
            if cmp.op == "=" and bound.contains(k):
                return Bound.exact(k)
        return bound
    # Or / Not / TruePredicate: no sound single-interval restriction.
    return bound
