"""Predicate evaluation over exact and bounded rows.

Two evaluators are provided:

* :func:`evaluate_exact` — ordinary two-valued evaluation over a row whose
  referenced columns all hold exact values (the master-side semantics).
* :func:`evaluate_trilean` — three-valued evaluation over a row whose
  columns may hold :class:`~repro.core.bound.Bound` intervals.  The result
  is ``TRUE`` when the predicate holds for *every* realization of the
  bounds, ``FALSE`` when it holds for *none*, and ``MAYBE`` otherwise.
  This is the value-level form of the paper's ``Certain``/``Possible``
  transforms (Appendix D): ``Certain(P)`` ⟺ result is TRUE, and
  ``Possible(P)`` ⟺ result is not FALSE.

Note the same conservative approximations as the paper: conjunction of
``Possible`` and disjunction of ``Certain`` are one-directional, so a
``MAYBE`` may occasionally be reported for a tuple that is really decided
(correlated subexpressions); this affects only optimality, never
correctness.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bound import Bound, Trilean
from repro.errors import PredicateError, PredicateTypeError
from repro.predicates.ast import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.storage.row import Row

__all__ = ["evaluate_exact", "evaluate_trilean"]


def resolve_column(row: Row, term: ColumnRef):
    """Fetch a column value, preferring the table-qualified key.

    Joined rows (:mod:`repro.joins`) store values under ``table.column``
    keys (plus unqualified aliases when unambiguous); single-table rows use
    plain column names.  This helper makes both work for any ``ColumnRef``.
    """
    if term.table is not None:
        qualified = f"{term.table}.{term.column}"
        if qualified in row:
            return row[qualified]
    return row[term.column]


def _term_value_exact(term: Term, row: Row) -> float | str:
    if isinstance(term, Literal):
        return term.value
    value = resolve_column(row, term)
    if isinstance(value, str):
        return value
    if isinstance(value, Bound):
        if not value.is_exact:
            raise PredicateTypeError(
                f"column {term.column!r} holds non-exact bound {value}; "
                "exact evaluation is impossible"
            )
        return term.as_number(value.lo)
    return term.as_number(float(value))


def _term_value_bound(term: Term, row: Row) -> Bound | str:
    if isinstance(term, Literal):
        if isinstance(term.value, str):
            return term.value
        return Bound.exact(term.value)
    value = resolve_column(row, term)
    if isinstance(value, str):
        return value
    if isinstance(value, Bound):
        return term.as_bound(value)
    return term.as_bound(Bound.exact(float(value)))


_EXACT_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def evaluate_exact(predicate: Predicate, row: Row) -> bool:
    """Two-valued evaluation; every referenced column must be exact."""
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, Comparison):
        left = _term_value_exact(predicate.left, row)
        right = _term_value_exact(predicate.right, row)
        if isinstance(left, str) != isinstance(right, str):
            raise PredicateTypeError(
                f"cannot compare {type(left).__name__} with {type(right).__name__}"
            )
        if isinstance(left, str):
            if predicate.op not in ("=", "!="):
                raise PredicateTypeError(
                    f"operator {predicate.op!r} is not defined for strings"
                )
            return (left == right) if predicate.op == "=" else (left != right)
        return _EXACT_OPS[predicate.op](left, right)
    if isinstance(predicate, Not):
        return not evaluate_exact(predicate.operand, row)
    if isinstance(predicate, And):
        return evaluate_exact(predicate.left, row) and evaluate_exact(
            predicate.right, row
        )
    if isinstance(predicate, Or):
        return evaluate_exact(predicate.left, row) or evaluate_exact(
            predicate.right, row
        )
    raise PredicateError(f"unknown predicate node {predicate!r}")


def _compare_trilean(left: Bound | str, op: str, right: Bound | str) -> Trilean:
    if isinstance(left, str) or isinstance(right, str):
        if not (isinstance(left, str) and isinstance(right, str)):
            raise PredicateTypeError("cannot compare string with numeric value")
        if op == "=":
            return Trilean.of(left == right)
        if op == "!=":
            return Trilean.of(left != right)
        raise PredicateTypeError(f"operator {op!r} is not defined for strings")
    if op == "<":
        return left.cmp_lt(right)
    if op == "<=":
        return left.cmp_le(right)
    if op == ">":
        return left.cmp_gt(right)
    if op == ">=":
        return left.cmp_ge(right)
    if op == "=":
        return left.cmp_eq(right)
    if op == "!=":
        return left.cmp_ne(right)
    raise PredicateError(f"unknown comparison operator {op!r}")


def evaluate_trilean(predicate: Predicate, row: Row) -> Trilean:
    """Three-valued evaluation over possibly-bounded column values."""
    if isinstance(predicate, TruePredicate):
        return Trilean.TRUE
    if isinstance(predicate, Comparison):
        left = _term_value_bound(predicate.left, row)
        right = _term_value_bound(predicate.right, row)
        return _compare_trilean(left, predicate.op, right)
    if isinstance(predicate, Not):
        return ~evaluate_trilean(predicate.operand, row)
    if isinstance(predicate, And):
        return evaluate_trilean(predicate.left, row) & evaluate_trilean(
            predicate.right, row
        )
    if isinstance(predicate, Or):
        return evaluate_trilean(predicate.left, row) | evaluate_trilean(
            predicate.right, row
        )
    raise PredicateError(f"unknown predicate node {predicate!r}")
