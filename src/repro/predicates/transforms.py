"""Symbolic ``Possible``/``Certain`` predicate transforms (Appendix D).

Given a predicate ``P`` over columns that may hold bounded values, the
paper defines two derived predicates expressed purely over interval
*endpoints*:

* ``Certain(P)`` — true only for tuples guaranteed to satisfy ``P`` under
  every realization of their bounds (membership in ``T+``);
* ``Possible(P)`` — true for tuples that might satisfy ``P`` under some
  realization (membership in ``T+ ∪ T?``).

The translation follows the paper's Figure 8 table:

========================  ==============================  =========================
expression E              Possible(E)                     Certain(E)
========================  ==============================  =========================
``x = y``                 ``x.lo <= y.hi ∧ x.hi >= y.lo`` ``x.lo = x.hi = y.lo = y.hi``
``x < y``                 ``x.lo < y.hi``                 ``x.hi < y.lo``
``x <= y``                ``x.lo <= y.hi``                ``x.hi <= y.lo``
``¬E``                    ``¬Certain(E)``                 ``¬Possible(E)``
``E1 ∨ E2``               ``Possible(E1) ∨ Possible(E2)`` ``Certain(E1) ∨ Certain(E2)``
``E1 ∧ E2``               ``Possible(E1) ∧ Possible(E2)`` ``Certain(E1) ∧ Certain(E2)``
========================  ==============================  =========================

(Conjunction for ``Possible`` and disjunction for ``Certain`` are sound
implications rather than equivalences; misclassification can only push a
tuple into ``T?``, affecting optimality, never correctness.)

The transforms produce *endpoint predicates*: ordinary two-valued
predicates over terms that reference a named endpoint (``lo``/``hi``) of
each bounded column.  They can therefore be evaluated with a plain
row scan — or, as the paper suggests, compiled into SQL and served by
endpoint indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal as TypingLiteral

from repro.core.bound import Bound
from repro.errors import PredicateError, PredicateTypeError
from repro.predicates.ast import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    Term,
    TruePredicate,
)
from repro.storage.row import Row

__all__ = [
    "EndpointRef",
    "EndpointComparison",
    "EndpointPredicate",
    "possible",
    "certain",
    "evaluate_endpoint",
    "endpoint_sql",
]

Side = TypingLiteral["lo", "hi"]


@dataclass(frozen=True, slots=True)
class EndpointRef:
    """A reference to one endpoint of a term's interval value.

    For a literal or exact column both endpoints coincide with the value;
    for a bounded column ``lo``/``hi`` select the interval endpoints, with
    the term's linear transform applied afterwards (a positive ``scale``
    preserves endpoint order; a negative one swaps lo and hi, which the
    constructor accounts for by swapping the requested side).
    """

    term: Term
    side: Side

    def value(self, row: Row) -> float | str:
        if isinstance(self.term, Literal):
            return self.term.value
        from repro.predicates.eval import resolve_column

        raw = resolve_column(row, self.term)
        if isinstance(raw, str):
            return raw
        bound = raw if isinstance(raw, Bound) else Bound.exact(float(raw))
        mapped = self.term.as_bound(bound)
        return mapped.lo if self.side == "lo" else mapped.hi

    def __str__(self) -> str:
        if isinstance(self.term, Literal):
            return str(self.term)
        return f"{self.term}.{self.side}"


@dataclass(frozen=True, slots=True)
class EndpointComparison:
    """A two-valued comparison between interval endpoints.

    ``from_equality`` marks the ``<=``/``>=`` comparisons the Figure 8
    translation of value-level ``=``/``!=`` produces.  Only those may
    compare strings (text values are exact, so the lexicographic checks
    conjoin to plain equality); a user-written order comparison on
    strings stays rejected, matching the three-valued evaluator.
    """

    left: EndpointRef
    op: str
    right: EndpointRef
    from_equality: bool = False

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class EndpointNot:
    operand: "EndpointPredicate"

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True, slots=True)
class EndpointAnd:
    left: "EndpointPredicate"
    right: "EndpointPredicate"

    def __str__(self) -> str:
        return f"({self.left}) AND ({self.right})"


@dataclass(frozen=True, slots=True)
class EndpointOr:
    left: "EndpointPredicate"
    right: "EndpointPredicate"

    def __str__(self) -> str:
        return f"({self.left}) OR ({self.right})"


@dataclass(frozen=True, slots=True)
class EndpointTrue:
    def __str__(self) -> str:
        return "TRUE"


EndpointPredicate = (
    EndpointComparison | EndpointNot | EndpointAnd | EndpointOr | EndpointTrue
)


def _lo(term: Term) -> EndpointRef:
    return EndpointRef(term, "lo")


def _hi(term: Term) -> EndpointRef:
    return EndpointRef(term, "hi")


def _possible_comparison(cmp: Comparison) -> EndpointPredicate:
    x, y = cmp.left, cmp.right
    if cmp.op == "<":
        return EndpointComparison(_lo(x), "<", _hi(y))
    if cmp.op == "<=":
        return EndpointComparison(_lo(x), "<=", _hi(y))
    if cmp.op == ">":
        return EndpointComparison(_hi(x), ">", _lo(y))
    if cmp.op == ">=":
        return EndpointComparison(_hi(x), ">=", _lo(y))
    if cmp.op == "=":
        return EndpointAnd(
            EndpointComparison(_lo(x), "<=", _hi(y), from_equality=True),
            EndpointComparison(_hi(x), ">=", _lo(y), from_equality=True),
        )
    if cmp.op == "!=":
        # Possible(x != y) = NOT Certain(x = y)
        return EndpointNot(_certain_comparison(Comparison(x, "=", y)))
    raise PredicateError(f"unknown comparison operator {cmp.op!r}")


def _certain_comparison(cmp: Comparison) -> EndpointPredicate:
    x, y = cmp.left, cmp.right
    if cmp.op == "<":
        return EndpointComparison(_hi(x), "<", _lo(y))
    if cmp.op == "<=":
        return EndpointComparison(_hi(x), "<=", _lo(y))
    if cmp.op == ">":
        return EndpointComparison(_lo(x), ">", _hi(y))
    if cmp.op == ">=":
        return EndpointComparison(_lo(x), ">=", _hi(y))
    if cmp.op == "=":
        # Certain only when both intervals are the same single point.
        return EndpointAnd(
            EndpointAnd(
                EndpointComparison(_lo(x), "=", _hi(x)),
                EndpointComparison(_lo(y), "=", _hi(y)),
            ),
            EndpointComparison(_lo(x), "=", _lo(y)),
        )
    if cmp.op == "!=":
        # Certain(x != y) = NOT Possible(x = y)
        return EndpointNot(_possible_comparison(Comparison(x, "=", y)))
    raise PredicateError(f"unknown comparison operator {cmp.op!r}")


def possible(predicate: Predicate) -> EndpointPredicate:
    """The ``Possible`` transform: tuples that may satisfy the predicate."""
    if isinstance(predicate, TruePredicate):
        return EndpointTrue()
    if isinstance(predicate, Comparison):
        return _possible_comparison(predicate)
    if isinstance(predicate, Not):
        return EndpointNot(certain(predicate.operand))
    if isinstance(predicate, And):
        return EndpointAnd(possible(predicate.left), possible(predicate.right))
    if isinstance(predicate, Or):
        return EndpointOr(possible(predicate.left), possible(predicate.right))
    raise PredicateError(f"unknown predicate node {predicate!r}")


def certain(predicate: Predicate) -> EndpointPredicate:
    """The ``Certain`` transform: tuples guaranteed to satisfy the predicate."""
    if isinstance(predicate, TruePredicate):
        return EndpointTrue()
    if isinstance(predicate, Comparison):
        return _certain_comparison(predicate)
    if isinstance(predicate, Not):
        return EndpointNot(possible(predicate.operand))
    if isinstance(predicate, And):
        return EndpointAnd(certain(predicate.left), certain(predicate.right))
    if isinstance(predicate, Or):
        return EndpointOr(certain(predicate.left), certain(predicate.right))
    raise PredicateError(f"unknown predicate node {predicate!r}")


_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def evaluate_endpoint(predicate: EndpointPredicate, row: Row) -> bool:
    """Evaluate an endpoint predicate (two-valued) against a row."""
    if isinstance(predicate, EndpointTrue):
        return True
    if isinstance(predicate, EndpointComparison):
        left = predicate.left.value(row)
        right = predicate.right.value(row)
        if isinstance(left, str) or isinstance(right, str):
            if not (isinstance(left, str) and isinstance(right, str)):
                raise PredicateTypeError("cannot compare string with numeric value")
            if predicate.op == "=":
                return left == right
            if predicate.op == "!=":
                return left != right
            if predicate.from_equality:
                # Text values are exact (lo == hi == the string), so the
                # equality translation's lexicographic checks conjoin to
                # plain equality.  User-written order comparisons on
                # strings stay rejected, matching evaluate_trilean.
                if predicate.op == "<=":
                    return left <= right
                if predicate.op == ">=":
                    return left >= right
            raise PredicateTypeError(
                f"operator {predicate.op!r} is not defined for strings"
            )
        return _OPS[predicate.op](left, right)
    if isinstance(predicate, EndpointNot):
        return not evaluate_endpoint(predicate.operand, row)
    if isinstance(predicate, EndpointAnd):
        return evaluate_endpoint(predicate.left, row) and evaluate_endpoint(
            predicate.right, row
        )
    if isinstance(predicate, EndpointOr):
        return evaluate_endpoint(predicate.left, row) or evaluate_endpoint(
            predicate.right, row
        )
    raise PredicateError(f"unknown endpoint predicate node {predicate!r}")


def endpoint_sql(predicate: EndpointPredicate) -> str:
    """Render an endpoint predicate as SQL-ish text.

    The paper notes the classification filters "can be expressed as SQL
    queries and optimized by the system"; this renderer produces the text a
    host database would receive (``col__lo`` / ``col__hi`` virtual columns).
    """
    if isinstance(predicate, EndpointTrue):
        return "TRUE"
    if isinstance(predicate, EndpointComparison):
        return f"{_sql_ref(predicate.left)} {predicate.op} {_sql_ref(predicate.right)}"
    if isinstance(predicate, EndpointNot):
        return f"NOT ({endpoint_sql(predicate.operand)})"
    if isinstance(predicate, EndpointAnd):
        return f"({endpoint_sql(predicate.left)} AND {endpoint_sql(predicate.right)})"
    if isinstance(predicate, EndpointOr):
        return f"({endpoint_sql(predicate.left)} OR {endpoint_sql(predicate.right)})"
    raise PredicateError(f"unknown endpoint predicate node {predicate!r}")


def _sql_ref(ref: EndpointRef) -> str:
    if isinstance(ref.term, Literal):
        return str(ref.term)
    base = f"{ref.term.column}__{ref.side}"
    if ref.term.scale != 1.0:
        base = f"{ref.term.scale:g} * {base}"
    if ref.term.offset:
        base = f"({base} + {ref.term.offset:g})"
    return base
