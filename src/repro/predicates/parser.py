"""Tokenizer and recursive-descent parser for predicate expressions.

The grammar covers the predicate language of the paper: arbitrary boolean
combinations of binary comparisons between columns (optionally with a
linear transform) and constants.

::

    predicate   := or_expr
    or_expr     := and_expr ( OR and_expr )*
    and_expr    := not_expr ( AND not_expr )*
    not_expr    := NOT not_expr | '(' predicate ')' | comparison
    comparison  := term op term
    op          := '<' | '<=' | '>' | '>=' | '=' | '!=' | '<>'
    term        := [number '*'] column [('+'|'-') number]
                 | number | string | column
    column      := IDENT [ '.' IDENT ]

The tokenizer is shared with the SQL front-end (:mod:`repro.sql`), which
layers the ``SELECT … WITHIN …`` statement grammar on top.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SqlSyntaxError
from repro.predicates.ast import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = ["Token", "tokenize", "TokenStream", "parse_predicate", "PredicateParser"]


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token: kind, source text, and offset for error messages."""

    kind: str  # 'ident', 'number', 'string', 'op', 'punct', 'eof'
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'[^']*')
  | (?P<op><=|>=|!=|<>|<|>|=)
  | (?P<punct>[(),.*+\-/;])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens, raising on unrecognized characters."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SqlSyntaxError(f"unexpected character {text[pos]!r}", pos)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "op" and value == "<>":
                value = "!="
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    tokens.append(Token("eof", "", len(text)))
    return tokens


class TokenStream:
    """A cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.text.upper() in words

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if token.kind == "ident" and token.text.upper() == word:
            return self.advance()
        raise SqlSyntaxError(f"expected {word}, found {token.text!r}", token.pos)

    def accept_punct(self, text: str) -> bool:
        token = self.peek()
        if token.kind == "punct" and token.text == text:
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> Token:
        token = self.peek()
        if token.kind == "punct" and token.text == text:
            return self.advance()
        raise SqlSyntaxError(f"expected {text!r}, found {token.text!r}", token.pos)

    def expect_ident(self, what: str = "identifier") -> Token:
        token = self.peek()
        if token.kind == "ident":
            return self.advance()
        raise SqlSyntaxError(f"expected {what}, found {token.text!r}", token.pos)

    def expect_eof(self) -> None:
        token = self.peek()
        if token.kind != "eof":
            raise SqlSyntaxError(f"unexpected trailing input {token.text!r}", token.pos)


_RESERVED = {
    "AND", "OR", "NOT", "TRUE", "SELECT", "FROM", "WHERE", "WITHIN",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "MEDIAN", "GROUP", "BY",
}


class PredicateParser:
    """Recursive-descent parser building :mod:`repro.predicates.ast` trees."""

    def __init__(self, stream: TokenStream) -> None:
        self.stream = stream

    # ------------------------------------------------------------------
    def parse(self) -> Predicate:
        return self._or_expr()

    def _or_expr(self) -> Predicate:
        node = self._and_expr()
        while self.stream.accept_keyword("OR"):
            node = Or(node, self._and_expr())
        return node

    def _and_expr(self) -> Predicate:
        node = self._not_expr()
        while self.stream.accept_keyword("AND"):
            node = And(node, self._not_expr())
        return node

    def _not_expr(self) -> Predicate:
        if self.stream.accept_keyword("NOT"):
            return Not(self._not_expr())
        if self.stream.accept_keyword("TRUE"):
            return TruePredicate()
        if self.stream.accept_punct("("):
            inner = self._or_expr()
            self.stream.expect_punct(")")
            return inner
        return self._comparison()

    def _comparison(self) -> Comparison:
        left = self._term()
        op_token = self.stream.peek()
        if op_token.kind != "op":
            raise SqlSyntaxError(
                f"expected comparison operator, found {op_token.text!r}", op_token.pos
            )
        self.stream.advance()
        right = self._term()
        return Comparison(left, op_token.text, right)

    def _term(self) -> ColumnRef | Literal:
        token = self.stream.peek()
        if token.kind == "string":
            self.stream.advance()
            return Literal(token.text[1:-1])
        sign = 1.0
        if token.kind == "punct" and token.text == "-":
            self.stream.advance()
            sign = -1.0
            token = self.stream.peek()
        if token.kind == "number":
            self.stream.advance()
            value = sign * float(token.text)
            # 'number * column' form
            if self.stream.accept_punct("*"):
                column = self._column_ref(scale=value)
                return self._maybe_offset(column)
            return Literal(value)
        if token.kind == "ident" and token.text.upper() not in _RESERVED:
            column = self._column_ref(scale=sign)
            return self._maybe_offset(column)
        raise SqlSyntaxError(f"expected term, found {token.text!r}", token.pos)

    def _column_ref(self, scale: float = 1.0) -> ColumnRef:
        first = self.stream.expect_ident("column name")
        table: str | None = None
        column = first.text
        if self.stream.accept_punct("."):
            table = first.text
            column = self.stream.expect_ident("column name").text
        return ColumnRef(column=column, table=table, scale=scale)

    def _maybe_offset(self, column: ColumnRef) -> ColumnRef:
        token = self.stream.peek()
        if token.kind == "punct" and token.text in ("+", "-"):
            self.stream.advance()
            number = self.stream.peek()
            if number.kind != "number":
                raise SqlSyntaxError(
                    f"expected number after {token.text!r}", number.pos
                )
            self.stream.advance()
            offset = float(number.text)
            if token.text == "-":
                offset = -offset
            return ColumnRef(
                column=column.column,
                table=column.table,
                scale=column.scale,
                offset=offset,
            )
        return column


def parse_predicate(text: str) -> Predicate:
    """Parse standalone predicate text, e.g. ``"bandwidth > 50 AND latency < 10"``."""
    stream = TokenStream(tokenize(text))
    predicate = PredicateParser(stream).parse()
    stream.expect_eof()
    return predicate
