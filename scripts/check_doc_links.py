#!/usr/bin/env python
"""Link-check the documentation: every referenced path must exist.

Two classes of reference are verified across ``README.md`` and
``docs/*.md`` (CI's docs job runs this on every push):

* **Markdown links** ``[text](target)`` — relative targets (optionally
  with a ``#anchor``) must resolve to a file or directory relative to
  the file containing the link.  ``http(s)``/``mailto`` targets are
  skipped (no network in CI).
* **Backtick path references** — inline code spans that *look like* repo
  paths (contain a ``/`` and end in a known source suffix, e.g.
  ``src/repro/storage/columnar.py`` or ``tests/property/…``) must point
  at real files.  Spans with spaces, wildcards, or call syntax are
  ignored; ``module/file.py`` references are also tried under ``src/``
  and ``src/repro/`` so docs may use import-style shorthand.

Exit status is the number of broken references (0 = clean).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`([^`\n]+)`")
PATH_SUFFIXES = (".py", ".md", ".json", ".yml", ".toml", ".txt")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    docs = [REPO / "README.md"]
    docs.extend(sorted((REPO / "docs").glob("*.md")))
    return [doc for doc in docs if doc.exists()]


def check_markdown_links(doc: Path) -> list[str]:
    errors = []
    for match in MD_LINK.finditer(doc.read_text()):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not (doc.parent / path).exists():
            errors.append(f"{doc.relative_to(REPO)}: broken link -> {target}")
    return errors


def looks_like_path(span: str) -> bool:
    if "/" not in span or any(ch in span for ch in " *(){}<>$…"):
        return False
    return span.endswith(PATH_SUFFIXES) or span.endswith("/")


def check_code_spans(doc: Path) -> list[str]:
    errors = []
    for match in CODE_SPAN.finditer(doc.read_text()):
        span = match.group(1)
        if not looks_like_path(span):
            continue
        candidates = [REPO / span, REPO / "src" / span, REPO / "src" / "repro" / span]
        if not any(c.exists() for c in candidates):
            errors.append(f"{doc.relative_to(REPO)}: missing path -> {span}")
    return errors


def main() -> int:
    errors: list[str] = []
    for doc in doc_files():
        errors.extend(check_markdown_links(doc))
        errors.extend(check_code_spans(doc))
    for error in errors:
        print(error)
    checked = ", ".join(str(d.relative_to(REPO)) for d in doc_files())
    print(f"checked: {checked} — {len(errors)} broken reference(s)")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main())
