#!/usr/bin/env python
"""Golden-value tripwires over the committed benchmark results.

The ``BENCH_*.json`` files at the repo root carry deterministic
smoke numbers (cost-model arithmetic on seeded workloads) alongside
machine-dependent timings.  Each bench already guards its own smoke
baseline at run time; this script formalizes those tripwires in one
place — a golden-values harness in the style of data-pipeline golden
checks — so CI (and a human after regenerating any results file) can
verify the committed numbers haven't silently drifted without running
the benches:

1. cache_hierarchy  — smoke cost/answer at max cache fan-out
2. concurrent_service — smoke serial mixed cost/answer
3. refresh_planner  — smoke vector planner warm time (timing: loose)
4. sharded_sources  — smoke cost/answer at max shard fan-in
5. columnar_executor — end-to-end columnar speedup (timing: loose)
6. fault_tolerance  — smoke availability under the seeded chaos sweep
   (may not fall below the committed baseline)
7. elastic_group    — smoke all-in cost/answer under the autoscaled
   traffic ramp, plus zero re-stick failures after membership changes
8. interval_index   — smoke classify+harvest speedup of the endpoint
   indexes over the dense sweep (timing: loose) and the deterministic
   materialized-window fraction

Every benchmark registered in ``BENCH_CHECKS`` must have its
``BENCH_*.json`` committed; a missing or stale results file is reported
as a failure in its own right rather than silently skipped.

A further, *measured* tripwire guards the observability layer itself
(PR 7): a short mixed workload runs twice, telemetry enabled and
disabled, and enabled throughput must stay within
``TRIPWIRE_OVERHEAD_LIMIT`` (default 5%) of the no-op path — the
instrumentation may not tax the serving hot path.  Skip it (e.g. on a
loaded runner) with ``--skip-overhead``.

Golden values live in ``scripts/bench_tripwires.json``; ``--update``
re-records them from the current results files.  Exit status is the
number of failed checks.  Run with ``PYTHONPATH=src`` (the script also
inserts ``src/`` itself).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO / "scripts" / "bench_tripwires.json"

sys.path.insert(0, str(REPO / "src"))


class GoldenValues:
    """Track and validate key statistics against a committed golden file.

    Normal mode compares every ``check(key, value, tolerance)`` call
    against the stored golden value (relative tolerance); update mode
    re-records the observed values instead.  Leaving the ``with`` block
    raises ``ValueError`` listing every mismatch (update mode writes the
    file and never raises).
    """

    def __init__(self, path: Path, update_mode: bool = False) -> None:
        self.path = path
        self.update_mode = update_mode
        self.failures: list[str] = []
        self.checked = 0
        self._golden: dict = {}

    def __enter__(self) -> "GoldenValues":
        if self.path.exists():
            self._golden = json.loads(self.path.read_text())
        return self

    def check(self, key: str, value: float, tolerance: float = 0.0) -> None:
        """Validate ``value`` against the golden entry for ``key``.

        ``tolerance`` is relative: ``|value - golden| <= tolerance *
        |golden|``.  Unknown keys fail in normal mode (the golden file
        is stale) and are recorded in update mode.
        """
        self.checked += 1
        if self.update_mode:
            self._golden[key] = {"value": value, "tolerance": tolerance}
            return
        entry = self._golden.get(key)
        if entry is None:
            self.failures.append(
                f"{key}: no golden value recorded (run with --update)"
            )
            return
        golden = entry["value"]
        allowed = entry.get("tolerance", tolerance) * abs(golden)
        if abs(value - golden) > allowed:
            self.failures.append(
                f"{key}: {value:g} drifted from golden {golden:g} "
                f"(allowed ±{allowed:g})"
            )

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        if self.update_mode:
            self.path.write_text(
                json.dumps(self._golden, indent=2, sort_keys=True) + "\n"
            )
        elif self.failures:
            raise ValueError(
                "golden-value tripwires failed:\n  "
                + "\n  ".join(self.failures)
            )


# ----------------------------------------------------------------------
# The per-benchmark golden checks, declaratively: one row per tripwire,
# ``(bench, dotted path into BENCH_<bench>.json, relative tolerance)``.
# Cost-model numbers are deterministic on any machine (tight tolerance:
# a drift means planner/executor behavior changed); wall-clock numbers
# get loose tolerances (they re-record per machine class).  Every bench
# named here MUST have a committed results file — a missing file is a
# loud failure, not a silent skip, so a bench can't quietly drop out of
# CI coverage when its JSON is deleted or renamed.
# ----------------------------------------------------------------------
BENCH_CHECKS: list[tuple[str, str, float]] = [
    ("cache_hierarchy", "smoke_baseline.cost_per_answer_max_fanout", 0.5),
    ("concurrent_service", "smoke_baseline.serial_cost_per_answer", 0.5),
    ("refresh_planner", "smoke_baseline.vector_warm_seconds", 2.0),
    ("sharded_sources", "smoke_baseline.cost_per_answer_max_fanin", 0.5),
    ("columnar_executor", "end_to_end_speedup", 0.75),
    # Availability is a fraction in [0, 1]; the seeded chaos schedule is
    # deterministic, so any drift below golden means the failure-handling
    # stack started erroring queries it used to answer.
    ("fault_tolerance", "smoke_baseline.availability", 0.01),
    # All-in elasticity bill (refresh receipts + snapshot transfers per
    # answer) on the seeded ramp; re-stick failures are an exact zero —
    # any nonzero count means a membership change was client-visible.
    ("elastic_group", "smoke_baseline.cost_per_answer", 0.5),
    ("elastic_group", "smoke_baseline.re_stick_failures", 0.0),
    # ISSUE 10 interval indexes: the smoke speedup is wall-clock (loose —
    # it re-records per machine class) but the window fraction is pure
    # counting on a seeded table, so any drift means the classifier
    # started materializing different windows.
    ("interval_index", "smoke_baseline.classify_harvest_speedup", 0.75),
    ("interval_index", "smoke_baseline.window_fraction", 0.01),
]


class MissingBenchError(RuntimeError):
    """A bench registered in BENCH_CHECKS has no committed results file."""


def _bench(name: str) -> dict:
    path = REPO / f"BENCH_{name}.json"
    if not path.exists():
        raise MissingBenchError(
            f"BENCH_{name}.json is registered in BENCH_CHECKS but missing "
            f"from the repo root — run benchmarks/bench_{name}.py (and "
            f"commit the results), or drop its rows from BENCH_CHECKS"
        )
    return json.loads(path.read_text())


def _dig(payload: dict, dotted: str, bench: str):
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise MissingBenchError(
                f"BENCH_{bench}.json has no '{dotted}' entry — the results "
                f"file predates the tripwire; regenerate it"
            )
        node = node[part]
    return node


def check_bench_goldens(golden: GoldenValues) -> list[str]:
    """Run every BENCH_CHECKS row; returns loud missing-file failures."""
    missing: list[str] = []
    for bench, dotted, tolerance in BENCH_CHECKS:
        try:
            value = _dig(_bench(bench), dotted, bench)
        except MissingBenchError as exc:
            if str(exc) not in missing:  # one report per file, not per row
                missing.append(str(exc))
            continue
        golden.check(f"{bench}.{dotted.split('.')[-1]}", value, tolerance)
    return missing


# ----------------------------------------------------------------------
# Instrumentation overhead: telemetry on vs. off on one mixed workload.
# ----------------------------------------------------------------------
OVERHEAD_ROUNDS = 3
OVERHEAD_REPEATS = 5


async def _timed_run(telemetry_enabled: bool) -> float:
    from repro.service import QueryService
    from repro.workloads.service import mixed_scripts, mixed_service_system

    system, cost_model = mixed_service_system(n_caches=2)
    service = QueryService(
        system, cost_model=cost_model, telemetry_enabled=telemetry_enabled
    )
    cache = system.cache("edge/0")
    scripts = mixed_scripts(
        cache.table("links"),
        cache.table("nodes"),
        n_clients=8,
        queries_per_client=OVERHEAD_ROUNDS,
    )
    completed = 0
    start = time.perf_counter()
    for round_index in range(OVERHEAD_ROUNDS):
        system.clock.advance(20.0)
        for replica in system.group("edge"):
            replica.sync_bounds()
        answers = await asyncio.gather(
            *(
                service.query(
                    "edge", script.sqls[round_index],
                    client_id=script.client_id,
                )
                for script in scripts
            )
        )
        completed += len(answers)
    return completed / (time.perf_counter() - start)


def check_instrumentation_overhead(limit: float) -> list[str]:
    """Best-of-N throughput, telemetry on vs. off, interleaved so drift
    on a shared runner hits both sides equally."""
    best = {True: 0.0, False: 0.0}
    for _ in range(OVERHEAD_REPEATS):
        for enabled in (True, False):
            best[enabled] = max(
                best[enabled], asyncio.run(_timed_run(enabled))
            )
    ratio = best[True] / best[False]
    print(
        f"instrumentation overhead: enabled {best[True]:.1f} q/s vs "
        f"disabled {best[False]:.1f} q/s (ratio {ratio:.3f}, "
        f"floor {1 - limit:.2f})"
    )
    if ratio < 1 - limit:
        return [
            f"telemetry-enabled throughput {best[True]:.1f} q/s is more "
            f"than {limit:.0%} below the disabled path {best[False]:.1f} q/s"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="re-record the golden values from the current BENCH_*.json",
    )
    parser.add_argument(
        "--skip-overhead", action="store_true",
        help="skip the measured instrumentation-overhead tripwire",
    )
    parser.add_argument(
        "--overhead-limit", type=float, default=0.05,
        help="allowed telemetry throughput cost (default 0.05 = 5%%)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    with GoldenValues(GOLDEN_PATH, update_mode=args.update) as golden:
        failures.extend(check_bench_goldens(golden))
        # Collect instead of raising so the overhead check still runs.
        failures.extend(golden.failures)
        golden.failures = []
    if args.update:
        print(f"golden values recorded: {GOLDEN_PATH.relative_to(REPO)}")
    else:
        print(f"golden checks: {golden.checked - len(failures)}"
              f"/{golden.checked} within tolerance")

    if not args.skip_overhead and not args.update:
        failures.extend(check_instrumentation_overhead(args.overhead_limit))

    for failure in failures:
        print(f"TRIPWIRE: {failure}")
    return min(len(failures), 125)


if __name__ == "__main__":
    sys.exit(main())
