#!/usr/bin/env python
"""Dump a TRAPP deployment's metrics in Prometheus text exposition.

Two modes:

* **live** — ``--host H --port P`` connects a :class:`TrappClient` to a
  running server (``python -m repro serve``) and prints the ``metrics``
  op's text exposition, optionally followed by the most recent query
  spans (``--traces N``).
* **demo** (default, no ``--host``) — builds the mixed two-replica
  deployment from :func:`repro.workloads.service.mixed_service_system`,
  drives a short concurrent workload through a :class:`QueryService`
  in-process, and prints the resulting exposition — a self-contained
  tour of every metric family in ``docs/OBSERVABILITY.md``.

``--json`` prints the raw snapshot document (the exact ``metrics`` op
payload) instead of text.  Run with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import QueryService, TrappClient  # noqa: E402
from repro.service.protocol import json_safe  # noqa: E402
from repro.telemetry import render_text  # noqa: E402
from repro.workloads.service import (  # noqa: E402
    mixed_scripts,
    mixed_service_system,
)

DEMO_CLIENTS = 4
DEMO_QUERIES = 3


async def _live_report(args) -> tuple[dict | None, str | None, list[dict]]:
    async with await TrappClient.connect(
        args.host, args.port, client_id="metrics-report"
    ) as client:
        snapshot = await client.metrics() if args.json else None
        text = None if args.json else await client.metrics_text()
        traces = await client.trace(limit=args.traces) if args.traces else []
    return snapshot, text, traces


async def _demo_report(args) -> tuple[dict | None, str | None, list[dict]]:
    system, cost_model = mixed_service_system(n_caches=2)
    service = QueryService(system, cost_model=cost_model)
    cache = system.cache("edge/0")
    scripts = mixed_scripts(
        cache.table("links"),
        cache.table("nodes"),
        n_clients=DEMO_CLIENTS,
        queries_per_client=DEMO_QUERIES,
    )
    for round_index in range(DEMO_QUERIES):
        system.clock.advance(20.0)
        for replica in system.group("edge"):
            replica.sync_bounds()
        await asyncio.gather(
            *(
                service.query(
                    "edge", script.sqls[round_index],
                    client_id=script.client_id,
                )
                for script in scripts
            )
        )
    snapshot = service.telemetry.snapshot()
    traces = (
        service.telemetry.tracer.recent(limit=args.traces)
        if args.traces
        else []
    )
    return (
        snapshot if args.json else None,
        None if args.json else render_text(snapshot),
        traces,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", help="connect to a live server")
    parser.add_argument("--port", type=int, default=7474)
    parser.add_argument(
        "--traces", type=int, default=0, metavar="N",
        help="also print the N most recent query spans (NDJSON)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw snapshot document instead of text exposition",
    )
    args = parser.parse_args(argv)

    runner = _live_report if args.host else _demo_report
    snapshot, text, traces = asyncio.run(runner(args))

    if args.json:
        print(json.dumps(json_safe(snapshot), indent=2))
    else:
        print(text, end="")
    for span in traces:
        print(json.dumps(json_safe(span)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
